#include "partition/partition_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/string_util.h"
#include "rdf/ntriples.h"

namespace mpc::partition {

namespace {

constexpr const char* kManifestName = "manifest.txt";
constexpr const char* kAssignmentName = "assignment.txt";

std::string PartitionFileName(uint32_t i) {
  return "partition_" + std::to_string(i) + ".nt";
}

/// Strict base-10 unsigned parse: the whole field must be digits and fit
/// the target width. (strtoul silently accepts garbage as 0 and saturates
/// on overflow, which let truncated or corrupted files load as a valid
/// assignment to partition 0.)
bool ParseUintField(std::string_view text, uint64_t max, uint64_t* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (max - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

void WriteTriple(std::ofstream& out, const rdf::RdfGraph& graph,
                 const rdf::Triple& t) {
  out << graph.VertexName(t.subject) << ' '
      << graph.PropertyName(t.property) << ' '
      << graph.VertexName(t.object) << " .\n";
}

}  // namespace

Status PartitionIo::Save(const rdf::RdfGraph& graph,
                         const Partitioning& partitioning,
                         const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir + ": " + ec.message());

  const bool vertex_disjoint =
      partitioning.kind() == PartitioningKind::kVertexDisjoint;

  // Manifest: header lines "key value"; crossing properties one per line
  // after the "crossing:" marker.
  {
    std::ofstream out(dir + "/" + kManifestName, std::ios::binary);
    if (!out) return Status::IoError("cannot write manifest in " + dir);
    out << "kind " << (vertex_disjoint ? "vertex-disjoint" : "edge-disjoint")
        << "\n";
    out << "k " << partitioning.k() << "\n";
    out << "vertices " << graph.num_vertices() << "\n";
    out << "properties " << graph.num_properties() << "\n";
    out << "crossing:\n";
    for (rdf::PropertyId p : partitioning.CrossingProperties()) {
      out << graph.PropertyName(p) << "\n";
    }
    if (!out) return Status::IoError("manifest write failed in " + dir);
  }

  if (vertex_disjoint) {
    std::ofstream out(dir + "/" + kAssignmentName, std::ios::binary);
    if (!out) return Status::IoError("cannot write assignment in " + dir);
    const auto& part = partitioning.assignment().part;
    for (size_t v = 0; v < part.size(); ++v) {
      out << graph.VertexName(static_cast<rdf::VertexId>(v)) << '\t'
          << part[v] << '\n';
    }
    if (!out) return Status::IoError("assignment write failed in " + dir);
  }

  for (uint32_t i = 0; i < partitioning.k(); ++i) {
    std::ofstream out(dir + "/" + PartitionFileName(i), std::ios::binary);
    if (!out) {
      return Status::IoError("cannot write partition file " +
                             PartitionFileName(i));
    }
    const Partition& p = partitioning.partition(i);
    for (const rdf::Triple& t : p.internal_edges) WriteTriple(out, graph, t);
    for (const rdf::Triple& t : p.crossing_edges) WriteTriple(out, graph, t);
    if (!out) {
      return Status::IoError("write failed for " + PartitionFileName(i));
    }
  }
  return Status::Ok();
}

Result<Partitioning> PartitionIo::Load(const rdf::RdfGraph& graph,
                                       const std::string& dir) {
  std::ifstream manifest(dir + "/" + kManifestName, std::ios::binary);
  if (!manifest) {
    return Status::IoError("cannot open " + dir + "/" + kManifestName);
  }
  std::string kind;
  uint32_t k = 0;
  size_t vertices = 0;
  bool saw_kind = false;
  bool saw_k = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    std::istringstream in(line);
    std::string key;
    std::string value;
    in >> key;
    if (key == "kind") {
      if (!(in >> kind) || kind.empty()) {
        return Status::ParseError("manifest line " + std::to_string(line_no) +
                                  ": malformed kind");
      }
      saw_kind = true;
    } else if (key == "k") {
      uint64_t parsed = 0;
      if (!(in >> value) ||
          !ParseUintField(value, UINT32_MAX, &parsed) || parsed == 0) {
        return Status::ParseError("manifest line " + std::to_string(line_no) +
                                  ": invalid k '" + value + "'");
      }
      k = static_cast<uint32_t>(parsed);
      saw_k = true;
    } else if (key == "vertices") {
      uint64_t parsed = 0;
      if (!(in >> value) || !ParseUintField(value, UINT64_MAX, &parsed)) {
        return Status::ParseError("manifest line " + std::to_string(line_no) +
                                  ": invalid vertex count '" + value + "'");
      }
      vertices = parsed;
    } else if (key == "crossing:") {
      break;  // remainder is the crossing list; recomputed on load
    }
  }
  if (!saw_kind) {
    return Status::ParseError("manifest missing kind in " + dir);
  }
  if (!saw_k) return Status::ParseError("manifest missing k in " + dir);

  if (kind == "vertex-disjoint") {
    if (vertices != graph.num_vertices()) {
      return Status::InvalidArgument(
          "graph has " + std::to_string(graph.num_vertices()) +
          " vertices but the saved partitioning covers " +
          std::to_string(vertices));
    }
    std::ifstream in(dir + "/" + kAssignmentName, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot open " + dir + "/" + kAssignmentName);
    }
    VertexAssignment assignment;
    assignment.k = k;
    assignment.part.assign(graph.num_vertices(), UINT32_MAX);
    size_t assignment_line = 0;
    while (std::getline(in, line)) {
      ++assignment_line;
      if (StripWhitespace(line).empty()) continue;
      size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        return Status::ParseError("assignment line " +
                                  std::to_string(assignment_line) +
                                  ": no tab");
      }
      std::string_view lexical(line.data(), tab);
      rdf::VertexId v = graph.vertex_dict().Lookup(lexical);
      if (v == rdf::kInvalidVertex) {
        return Status::NotFound("assignment line " +
                                std::to_string(assignment_line) +
                                ": vertex not in graph: " +
                                std::string(lexical));
      }
      std::string_view field(line.data() + tab + 1, line.size() - tab - 1);
      uint64_t parsed = 0;
      if (!ParseUintField(field, UINT32_MAX, &parsed)) {
        return Status::ParseError("assignment line " +
                                  std::to_string(assignment_line) +
                                  ": invalid partition id '" +
                                  std::string(field) + "'");
      }
      const uint32_t p = static_cast<uint32_t>(parsed);
      if (p >= k) {
        return Status::OutOfRange("assignment line " +
                                  std::to_string(assignment_line) +
                                  ": partition out of range");
      }
      assignment.part[v] = p;
    }
    for (uint32_t p : assignment.part) {
      if (p == UINT32_MAX) {
        return Status::InvalidArgument(
            "saved assignment does not cover every vertex of the graph");
      }
    }
    return Partitioning::MaterializeVertexDisjoint(graph,
                                                   std::move(assignment));
  }

  if (kind == "edge-disjoint") {
    // Rebuild the triple assignment by parsing each site file and
    // locating its triples in the (sorted) graph.
    std::vector<uint32_t> triple_part(graph.num_edges(), UINT32_MAX);
    const auto& triples = graph.triples();
    for (uint32_t i = 0; i < k; ++i) {
      rdf::GraphBuilder builder;
      Status st = rdf::NTriplesParser::ParseFile(
          dir + "/" + PartitionFileName(i), &builder);
      if (!st.ok()) return st;
      rdf::RdfGraph site = builder.Build();
      for (const rdf::Triple& t : site.triples()) {
        rdf::VertexId s = graph.vertex_dict().Lookup(site.VertexName(t.subject));
        rdf::PropertyId p =
            graph.property_dict().Lookup(site.PropertyName(t.property));
        rdf::VertexId o = graph.vertex_dict().Lookup(site.VertexName(t.object));
        if (s == rdf::kInvalidVertex || p == rdf::kInvalidVertex ||
            o == rdf::kInvalidVertex) {
          return Status::NotFound("site triple not present in graph");
        }
        rdf::Triple key(s, p, o);
        auto it = std::lower_bound(triples.begin(), triples.end(), key);
        if (it == triples.end() || !(*it == key)) {
          return Status::NotFound("site triple not present in graph");
        }
        triple_part[it - triples.begin()] = i;
      }
    }
    for (uint32_t p : triple_part) {
      if (p == UINT32_MAX) {
        return Status::InvalidArgument(
            "saved site files do not cover every triple of the graph");
      }
    }
    return Partitioning::MaterializeEdgeDisjoint(graph, k, triple_part);
  }

  return Status::ParseError("unknown partitioning kind '" + kind + "'");
}

Result<uint64_t> PartitionIo::Fingerprint(const std::string& dir) {
  const std::string manifest_path =
      (std::filesystem::path(dir) / kManifestName).string();
  std::ifstream manifest(manifest_path, std::ios::binary);
  if (!manifest) {
    return Status::IoError("cannot open " + manifest_path);
  }
  std::ostringstream manifest_bytes;
  manifest_bytes << manifest.rdbuf();

  // The assignment file pins the vertex->site map; absent for
  // edge-disjoint partitionings, which hash the manifest alone.
  std::string assignment_bytes;
  const std::string assignment_path =
      (std::filesystem::path(dir) / kAssignmentName).string();
  std::ifstream assignment(assignment_path, std::ios::binary);
  if (assignment) {
    std::ostringstream buffer;
    buffer << assignment.rdbuf();
    assignment_bytes = std::move(buffer).str();
  }
  return HashCombine(HashString(manifest_bytes.str()),
                     HashString(assignment_bytes));
}

}  // namespace mpc::partition

#ifndef MPC_PARTITION_PARTITIONER_H_
#define MPC_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>

#include "partition/partitioning.h"
#include "rdf/graph.h"

namespace mpc::partition {

/// Common options shared by every partitioning strategy. k and epsilon
/// are the parameters of Definition 4.1 (number of sites, imbalance
/// tolerance); seed makes randomized strategies reproducible.
struct PartitionerOptions {
  uint32_t k = 8;
  double epsilon = 0.1;
  uint64_t seed = 1;
};

/// Strategy interface: given an RDF graph, produce a materialized
/// partitioning. Implementations: MpcPartitioner (the paper's
/// contribution), SubjectHashPartitioner, EdgeCutPartitioner ("METIS"),
/// VpPartitioner.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Strategy name as printed in the experiment tables
  /// ("MPC", "Subject_Hash", "METIS", "VP").
  virtual std::string name() const = 0;

  virtual Partitioning Partition(const rdf::RdfGraph& graph) const = 0;
};

}  // namespace mpc::partition

#endif  // MPC_PARTITION_PARTITIONER_H_

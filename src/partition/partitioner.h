#ifndef MPC_PARTITION_PARTITIONER_H_
#define MPC_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "partition/partitioning.h"
#include "rdf/graph.h"

namespace mpc::partition {

/// Common options shared by every partitioning strategy. k and epsilon
/// are the parameters of Definition 4.1 (number of sites, imbalance
/// tolerance); seed makes randomized strategies reproducible. This is
/// the single source of the k/epsilon/seed/num_threads quadruple —
/// MpcOptions and SelectorOptions embed it rather than re-declaring the
/// fields.
struct PartitionerOptions {
  uint32_t k = 8;
  double epsilon = 0.1;
  uint64_t seed = 1;
  /// Worker threads for the parallel phases (per-property costs, chunked
  /// parsing, per-site materialization). 0 = hardware_concurrency,
  /// 1 = the serial code path. Results are bit-identical at any value.
  int num_threads = 0;
};

/// Per-run diagnostics every strategy reports through Partition(). Each
/// strategy appends its own pipeline stages in execution order (MPC:
/// selection / coarsening / metis / materialize; the baselines: assign
/// or metis / materialize), so the offline benches can time all four
/// strategies uniformly. Virtual destructor so strategies can hand back
/// richer derived stats (see core::MpcRunStats) through the same call.
struct RunStats {
  struct Stage {
    std::string name;
    double millis = 0.0;
  };

  virtual ~RunStats() = default;

  /// Wall millis per pipeline stage, in execution order.
  std::vector<Stage> stages;
  /// Sum of the stage timings (the strategy's partitioning time).
  double total_millis = 0.0;
  /// Resolved worker count the run used (1 = serial).
  int threads_used = 1;

  void AddStage(std::string name, double millis) {
    stages.push_back(Stage{std::move(name), millis});
    total_millis += millis;
  }

  /// Wall millis of the named stage, 0 when the strategy has no such
  /// stage.
  double StageMillis(std::string_view name) const {
    for (const Stage& stage : stages) {
      if (stage.name == name) return stage.millis;
    }
    return 0.0;
  }
};

/// Strategy interface: given an RDF graph, produce a materialized
/// partitioning. Implementations: MpcPartitioner (the paper's
/// contribution), SubjectHashPartitioner, EdgeCutPartitioner ("METIS"),
/// VpPartitioner.
///
/// Partition() is a non-virtual template method: it opens the root
/// "partition.run" trace span, runs the strategy's PartitionImpl(), then
/// reports the stage timings to the metrics registry — so every
/// strategy is observable identically, with no per-strategy
/// instrumentation boilerplate.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Strategy name as printed in the experiment tables
  /// ("MPC", "Subject_Hash", "METIS", "VP").
  virtual std::string name() const = 0;

  /// Partitions the graph; when `stats` is non-null the strategy also
  /// reports its stage timings and thread usage through it.
  Partitioning Partition(const rdf::RdfGraph& graph,
                         RunStats* stats = nullptr) const;

 protected:
  /// The strategy body. Receives a non-null `stats` (Partition()
  /// substitutes a scratch one when the caller passed nullptr) and must
  /// AddStage() its pipeline stages in execution order.
  virtual Partitioning PartitionImpl(const rdf::RdfGraph& graph,
                                     RunStats* stats) const = 0;
};

}  // namespace mpc::partition

#endif  // MPC_PARTITION_PARTITIONER_H_

#ifndef MPC_PARTITION_PARTITION_IO_H_
#define MPC_PARTITION_PARTITION_IO_H_

#include <string>

#include "common/status.h"
#include "partition/partitioning.h"
#include "rdf/graph.h"

namespace mpc::partition {

/// On-disk layout of a saved partitioning, as a deployment would ship it
/// to sites:
///
///   <dir>/manifest.txt           k, kind, |V|, |L|, crossing properties
///   <dir>/assignment.txt         one "vertex-lexical <tab> partition" line
///                                per vertex (vertex-disjoint only)
///   <dir>/partition_<i>.nt       N-Triples per site: internal edges
///                                followed by crossing-edge replicas
///
/// Lexical forms (not dense ids) are stored, so a saved partitioning can
/// be reloaded against a graph whose dictionary assigns different ids —
/// or against a freshly re-parsed copy of the data.
class PartitionIo {
 public:
  /// Writes `partitioning` (over `graph`) into `dir`, creating it.
  static Status Save(const rdf::RdfGraph& graph,
                     const Partitioning& partitioning,
                     const std::string& dir);

  /// Reloads a vertex-disjoint partitioning saved by Save() and
  /// re-materializes it against `graph` (which must contain the same
  /// triples, e.g. re-parsed from the original file). Edge-disjoint
  /// (VP) partitionings are reconstructed from the per-site files.
  static Result<Partitioning> Load(const rdf::RdfGraph& graph,
                                   const std::string& dir);

  /// Content fingerprint of a saved partitioning (FNV over the manifest
  /// and assignment bytes). The dynamic update journal and checkpoints
  /// are stamped with it, so recovery refuses to replay a journal onto a
  /// partitioning it was not written for.
  static Result<uint64_t> Fingerprint(const std::string& dir);
};

}  // namespace mpc::partition

#endif  // MPC_PARTITION_PARTITION_IO_H_

#ifndef MPC_PARTITION_VP_PARTITIONER_H_
#define MPC_PARTITION_VP_PARTITIONER_H_

#include "partition/partitioner.h"

namespace mpc::partition {

/// VP baseline (HadoopRDF [17], S2RDF [31], WORQ [24]): edge-disjoint
/// vertical partitioning — all triples with the same property go to the
/// same partition, chosen as hash(property) mod k. No crossing edges or
/// crossing properties exist, but vertices are scattered across sites, so
/// a query is independently executable only when every one of its
/// properties happens to live on a single site.
class VpPartitioner : public Partitioner {
 public:
  explicit VpPartitioner(PartitionerOptions options) : options_(options) {}

  std::string name() const override { return "VP"; }

 protected:
  Partitioning PartitionImpl(const rdf::RdfGraph& graph,
                             RunStats* stats) const override;

 private:
  PartitionerOptions options_;
};

}  // namespace mpc::partition

#endif  // MPC_PARTITION_VP_PARTITIONER_H_

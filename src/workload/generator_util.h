#ifndef MPC_WORKLOAD_GENERATOR_UTIL_H_
#define MPC_WORKLOAD_GENERATOR_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"

namespace mpc::workload {

/// A benchmark query with the metadata the experiment tables need.
struct NamedQuery {
  std::string name;    // e.g. "LQ2"
  std::string sparql;  // full query text
  bool is_star = false;
};

/// A generated dataset: the graph plus its benchmark query set (empty for
/// datasets evaluated via query logs only).
struct GeneratedDataset {
  std::string name;
  rdf::RdfGraph graph;
  std::vector<NamedQuery> benchmark_queries;
};

/// Mints "<http://example.org/{ns}/{kind}{id}>".
std::string MakeIri(const std::string& ns, const std::string& kind,
                    uint64_t id);

/// Mints a quoted literal "\"{kind}{id}\"".
std::string MakeLiteral(const std::string& kind, uint64_t id);

/// Property IRI "<http://example.org/{ns}#{name}>".
std::string MakeProperty(const std::string& ns, const std::string& name);

/// The rdf:type IRI (shared by all generators; MPC's pruning heuristic
/// targets it explicitly in Section IV-E).
const std::string& RdfTypeIri();

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_GENERATOR_UTIL_H_

#ifndef MPC_WORKLOAD_LUBM_H_
#define MPC_WORKLOAD_LUBM_H_

#include <cstdint>

#include "workload/generator_util.h"

namespace mpc::workload {

/// Scaled-down analogue of the LUBM university benchmark [12]: exactly 18
/// properties, university "domains" whose entities (departments, faculty,
/// students, courses, publications) interconnect densely inside a
/// university and connect across universities only through the three
/// degreeFrom properties — the structure Section VI-D4 credits for MPC's
/// near-optimal greedy behaviour on LUBM. rdf:type and the shared
/// researchInterest literals form giant WCCs, so MPC's expected crossing
/// set is {type, ugDegreeFrom, mastersDegreeFrom, doctoralDegreeFrom,
/// researchInterest} — five properties, as in Table II.
struct LubmOptions {
  /// Number of university domains; triples scale linearly (~1000/univ).
  uint32_t num_universities = 50;
  uint64_t seed = 42;
};

/// Generates the graph and the 14 benchmark queries LQ1-LQ14 (10 stars,
/// 4 non-star: LQ2, LQ8, LQ9, LQ12 — the queries Fig. 7 shows MPC
/// winning).
GeneratedDataset MakeLubm(const LubmOptions& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_LUBM_H_

#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "workload/bio2rdf.h"
#include "workload/dbpedia.h"
#include "workload/lgd.h"
#include "workload/lubm.h"
#include "workload/watdiv.h"
#include "workload/yago2.h"

namespace mpc::workload {

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kLubm:
      return "LUBM";
    case DatasetId::kWatdiv:
      return "WatDiv";
    case DatasetId::kYago2:
      return "YAGO2";
    case DatasetId::kBio2rdf:
      return "Bio2RDF";
    case DatasetId::kDbpedia:
      return "DBpedia";
    case DatasetId::kLgd:
      return "LGD";
  }
  return "?";
}

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kLubm,    DatasetId::kWatdiv,  DatasetId::kYago2,
          DatasetId::kBio2rdf, DatasetId::kDbpedia, DatasetId::kLgd};
}

namespace {

uint32_t Scaled(uint32_t base, double scale) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(base * scale)));
}

}  // namespace

GeneratedDataset MakeDataset(DatasetId id, double scale, uint64_t seed) {
  switch (id) {
    case DatasetId::kLubm: {
      LubmOptions options;
      options.num_universities = Scaled(options.num_universities, scale);
      options.seed = seed;
      return MakeLubm(options);
    }
    case DatasetId::kWatdiv: {
      WatdivOptions options;
      options.num_communities = Scaled(options.num_communities, scale);
      options.seed = seed;
      return MakeWatdiv(options);
    }
    case DatasetId::kYago2: {
      Yago2Options options;
      options.num_neighborhoods = Scaled(options.num_neighborhoods, scale);
      options.seed = seed;
      return MakeYago2(options);
    }
    case DatasetId::kBio2rdf: {
      Bio2RdfOptions options;
      options.clusters_per_module =
          Scaled(options.clusters_per_module, scale);
      options.seed = seed;
      return MakeBio2Rdf(options);
    }
    case DatasetId::kDbpedia: {
      DbpediaOptions options;
      options.num_clusters = Scaled(options.num_clusters, scale);
      options.seed = seed;
      return MakeDbpedia(options);
    }
    case DatasetId::kLgd: {
      LgdOptions options;
      options.num_tiles = Scaled(options.num_tiles, scale);
      options.seed = seed;
      return MakeLgd(options);
    }
  }
  return GeneratedDataset{};
}

QueryLogOptions QueryLogProfile(DatasetId id) {
  QueryLogOptions options;
  switch (id) {
    case DatasetId::kWatdiv:
      options.star_fraction = 0.42;
      options.single_pattern_fraction = 0.08;
      options.var_predicate_fraction = 0.01;
      options.min_path_edges = 3;
      options.max_path_edges = 4;
      break;
    case DatasetId::kDbpedia:
      options.star_fraction = 0.32;
      options.single_pattern_fraction = 0.15;
      options.var_predicate_fraction = 0.03;
      options.min_path_edges = 3;
      options.max_path_edges = 3;
      break;
    case DatasetId::kLgd:
      // LSQ's LGD log is dominated by one-triple and small star lookups;
      // length-2 walks are stars, matching the ~97% star share.
      options.star_fraction = 0.25;
      options.single_pattern_fraction = 0.72;
      options.max_star_edges = 3;
      options.var_predicate_fraction = 0.01;
      options.min_path_edges = 2;
      options.max_path_edges = 3;
      break;
    default:
      break;
  }
  return options;
}

std::vector<NamedQuery> MakeQueryLog(DatasetId id,
                                     const rdf::RdfGraph& graph, size_t n,
                                     uint64_t seed) {
  QueryLogOptions options = QueryLogProfile(id);
  options.num_queries = n;
  options.seed = seed;
  return GenerateQueryLog(graph, options);
}

}  // namespace mpc::workload

#include "workload/yago2.h"

#include <string>
#include <vector>

namespace mpc::workload {

namespace {
constexpr const char* kNs = "yago2";
}

GeneratedDataset MakeYago2(const Yago2Options& options) {
  Rng rng(options.seed);
  rdf::GraphBuilder builder;

  const std::string p_type = RdfTypeIri();
  const std::string p_links_to = MakeProperty(kNs, "linksTo");
  const std::string p_located_in = MakeProperty(kNs, "locatedIn");
  const std::string p_citizen_of = MakeProperty(kNs, "citizenOf");
  const std::string p_lives_in = MakeProperty(kNs, "livesIn");

  // 30 neighborhood-local relation properties.
  std::vector<std::string> local_props;
  for (const char* name :
       {"hasChild",      "marriedTo",     "influences",   "actedIn",
        "directed",      "produced",      "wroteMusicFor", "edited",
        "playsFor",      "coachedBy",     "studiedUnder", "collaboratedWith",
        "succeededBy",   "precededBy",    "ownerOf",      "foundedBy",
        "leaderOf",      "memberOfBand",  "performedAt",  "premieredAt",
        "adaptedFrom",   "sequelOf",      "translatedBy", "illustratedBy",
        "narratedBy",    "composedFor",   "starredWith",  "mentoredBy",
        "apprenticeOf",  "dedicatedTo"}) {
    local_props.push_back(MakeProperty(kNs, name));
  }

  // 63 literal attribute properties (unique literal per use), completing
  // 98 = 1 type + 4 global links + 30 local links + 63 attributes.
  std::vector<std::string> attr_props;
  for (int i = 0; i < 63; ++i) {
    attr_props.push_back(MakeProperty(kNs, "attr" + std::to_string(i)));
  }

  std::vector<std::string> classes;
  for (const char* name : {"Person", "Movie", "Album", "Book", "City"}) {
    classes.push_back(MakeIri(kNs, std::string("class/") + name, 0));
  }
  std::vector<std::string> places;
  for (uint64_t c = 0; c < 30; ++c) {
    places.push_back(MakeIri(kNs, "Place", c));
  }
  // The geographic hierarchy itself (giant WCC under locatedIn).
  for (uint64_t c = 1; c < places.size(); ++c) {
    builder.Add(places[c], p_located_in, places[rng.Below(c)]);
  }

  std::vector<std::string> all_entities;
  uint64_t next_entity = 0, next_literal = 0;

  for (uint32_t n = 0; n < options.num_neighborhoods; ++n) {
    std::vector<std::string> members;
    const uint64_t size = rng.Between(15, 40);
    for (uint64_t i = 0; i < size; ++i) {
      std::string entity = MakeIri(kNs, "Entity", next_entity++);
      builder.Add(entity, p_type, classes[rng.Below(classes.size())]);
      const uint64_t num_attrs = rng.Between(2, 5);
      for (uint64_t a = 0; a < num_attrs; ++a) {
        builder.Add(entity, attr_props[rng.Below(attr_props.size())],
                    MakeLiteral("V", next_literal++));
      }
      if (rng.Chance(0.4)) {
        builder.Add(entity, p_citizen_of, places[rng.Below(places.size())]);
      }
      if (rng.Chance(0.3)) {
        builder.Add(entity, p_lives_in, places[rng.Below(places.size())]);
      }
      members.push_back(std::move(entity));
    }
    // Dense local relations within the neighborhood.
    const uint64_t num_links = size * 2;
    for (uint64_t l = 0; l < num_links; ++l) {
      const std::string& a = members[rng.Below(members.size())];
      const std::string& b = members[rng.Below(members.size())];
      builder.Add(a, local_props[rng.Below(local_props.size())], b);
    }
    // Witness structures so YQ1-YQ4 below have matches in most
    // neighborhoods (random linking alone rarely forms the exact shapes).
    if (members.size() >= 10 && rng.Chance(0.6)) {
      const auto& p_child = local_props[0];
      const auto& p_married = local_props[1];
      const auto& p_influences = local_props[2];
      const auto& p_acted = local_props[3];
      const auto& p_directed = local_props[4];
      const auto& p_plays_for = local_props[8];
      const auto& p_coached_by = local_props[9];
      const auto& p_leader_of = local_props[16];
      // YQ1: child -> child -> marriedTo chain.
      builder.Add(members[0], p_child, members[1]);
      builder.Add(members[1], p_child, members[2]);
      builder.Add(members[2], p_married, members[3]);
      // YQ2: marriedTo + influences + actedIn fork.
      builder.Add(members[4], p_married, members[5]);
      builder.Add(members[5], p_influences, members[6]);
      builder.Add(members[4], p_acted, members[7]);
      // YQ3: actor and director of the same movie; director's spouse.
      builder.Add(members[8], p_acted, members[7]);
      builder.Add(members[9], p_directed, members[7]);
      builder.Add(members[9], p_married, members[3]);
      // YQ4: playsFor/coachedBy/leaderOf triangle.
      builder.Add(members[0], p_plays_for, members[3]);
      builder.Add(members[0], p_coached_by, members[9]);
      builder.Add(members[9], p_leader_of, members[3]);
    }
    for (std::string& e : members) all_entities.push_back(std::move(e));
  }

  // Wiki-style links across neighborhoods.
  const uint64_t num_wiki = all_entities.size() / 2;
  for (uint64_t l = 0; l < num_wiki; ++l) {
    const std::string& a = all_entities[rng.Below(all_entities.size())];
    const std::string& b = all_entities[rng.Below(all_entities.size())];
    builder.Add(a, p_links_to, b);
  }

  GeneratedDataset dataset;
  dataset.name = "YAGO2";
  dataset.graph = builder.Build();

  // YQ1-YQ4: all non-star, all over local properties only.
  const std::string& p_child = local_props[0];
  const std::string& p_married = local_props[1];
  const std::string& p_influences = local_props[2];
  const std::string& p_acted = local_props[3];
  const std::string& p_directed = local_props[4];
  const std::string& p_plays_for = local_props[8];
  const std::string& p_coached_by = local_props[9];
  const std::string& p_leader_of = local_props[16];

  auto q = [&dataset](const char* name, std::string sparql, bool star) {
    dataset.benchmark_queries.push_back(
        NamedQuery{name, std::move(sparql), star});
  };
  // 3-hop path: grandchild's spouse.
  q("YQ1",
    "SELECT ?a ?b ?c ?d WHERE { ?a " + p_child + " ?b . ?b " + p_child +
        " ?c . ?c " + p_married + " ?d . }",
    false);
  // Fork: spouse's influence plus the person's film.
  q("YQ2",
    "SELECT ?a ?b ?c ?m WHERE { ?a " + p_married + " ?b . ?b " +
        p_influences + " ?c . ?a " + p_acted + " ?m . }",
    false);
  // Tree: actor and director of the same movie, plus the director's
  // spouse.
  q("YQ3",
    "SELECT ?a ?m ?d ?s WHERE { ?a " + p_acted + " ?m . ?d " + p_directed +
        " ?m . ?d " + p_married + " ?s . }",
    false);
  // Triangle: player, coach, and the team the coach leads.
  q("YQ4",
    "SELECT ?a ?t ?c WHERE { ?a " + p_plays_for + " ?t . ?a " +
        p_coached_by + " ?c . ?c " + p_leader_of + " ?t . }",
    false);
  return dataset;
}

}  // namespace mpc::workload

#include "workload/lubm.h"

#include <string>
#include <vector>

namespace mpc::workload {

namespace {

constexpr const char* kNs = "lubm";

std::string Prop(const char* name) { return MakeProperty(kNs, name); }
std::string Class(const char* name) {
  return MakeIri(kNs, std::string("class/") + name, 0);
}

}  // namespace

GeneratedDataset MakeLubm(const LubmOptions& options) {
  Rng rng(options.seed);
  rdf::GraphBuilder builder;

  // The 18 LUBM properties.
  const std::string p_type = RdfTypeIri();
  const std::string p_sub_org = Prop("subOrganizationOf");
  const std::string p_works_for = Prop("worksFor");
  const std::string p_head_of = Prop("headOf");
  const std::string p_teacher_of = Prop("teacherOf");
  const std::string p_takes_course = Prop("takesCourse");
  const std::string p_advisor = Prop("advisor");
  const std::string p_member_of = Prop("memberOf");
  const std::string p_pub_author = Prop("publicationAuthor");
  const std::string p_ug_degree = Prop("undergraduateDegreeFrom");
  const std::string p_ms_degree = Prop("mastersDegreeFrom");
  const std::string p_phd_degree = Prop("doctoralDegreeFrom");
  const std::string p_ta_of = Prop("teachingAssistantOf");
  const std::string p_interest = Prop("researchInterest");
  const std::string p_name = Prop("name");
  const std::string p_email = Prop("emailAddress");
  const std::string p_phone = Prop("telephone");
  const std::string p_office = Prop("officeNumber");

  const std::string c_university = Class("University");
  const std::string c_department = Class("Department");
  const std::string c_full_prof = Class("FullProfessor");
  const std::string c_assoc_prof = Class("AssociateProfessor");
  const std::string c_asst_prof = Class("AssistantProfessor");
  const std::string c_course = Class("Course");
  const std::string c_ug_student = Class("UndergraduateStudent");
  const std::string c_grad_student = Class("GraduateStudent");
  const std::string c_publication = Class("Publication");
  const std::string c_research_group = Class("ResearchGroup");

  const uint32_t num_univ = options.num_universities;
  auto univ_iri = [&](uint64_t u) { return MakeIri(kNs, "University", u); };
  auto random_other_univ = [&](uint64_t u) {
    if (num_univ <= 1) return univ_iri(u);
    uint64_t other = rng.Below(num_univ - 1);
    if (other >= u) ++other;
    return univ_iri(other);
  };

  uint64_t next_person = 0, next_course = 0, next_pub = 0, next_dept = 0,
           next_group = 0, next_literal = 0;

  for (uint64_t u = 0; u < num_univ; ++u) {
    const std::string univ = univ_iri(u);
    builder.Add(univ, p_type, c_university);

    const uint64_t num_depts = rng.Between(3, 6);
    for (uint64_t d = 0; d < num_depts; ++d) {
      const std::string dept = MakeIri(kNs, "Department", next_dept++);
      builder.Add(dept, p_type, c_department);
      builder.Add(dept, p_sub_org, univ);

      const uint64_t num_groups = rng.Between(1, 3);
      for (uint64_t g = 0; g < num_groups; ++g) {
        const std::string group = MakeIri(kNs, "ResearchGroup", next_group++);
        builder.Add(group, p_type, c_research_group);
        builder.Add(group, p_sub_org, dept);
      }

      // Faculty: one head plus regular professors.
      const uint64_t num_faculty = rng.Between(4, 8);
      std::vector<std::string> courses;
      std::vector<std::string> faculty;
      for (uint64_t f = 0; f < num_faculty; ++f) {
        const std::string prof = MakeIri(kNs, "Professor", next_person++);
        faculty.push_back(prof);
        const std::string& rank = (f == 0)   ? c_full_prof
                                  : (f % 2)  ? c_assoc_prof
                                             : c_asst_prof;
        builder.Add(prof, p_type, rank);
        builder.Add(prof, p_works_for, dept);
        if (f == 0) builder.Add(prof, p_head_of, dept);
        builder.Add(prof, p_name, MakeLiteral("Name", next_literal));
        builder.Add(prof, p_email, MakeLiteral("Email", next_literal));
        builder.Add(prof, p_phone, MakeLiteral("Phone", next_literal));
        builder.Add(prof, p_office, MakeLiteral("Office", next_literal));
        ++next_literal;
        // Shared interest literals (40 globally): a giant WCC by design,
        // making researchInterest a crossing property under MPC.
        builder.Add(prof, p_interest,
                    MakeLiteral("Interest", rng.Below(40)));
        // Degrees connect universities across domains.
        builder.Add(prof, p_ug_degree, random_other_univ(u));
        builder.Add(prof, p_ms_degree, random_other_univ(u));
        builder.Add(prof, p_phd_degree, random_other_univ(u));

        const uint64_t num_courses = rng.Between(1, 2);
        for (uint64_t c = 0; c < num_courses; ++c) {
          const std::string course = MakeIri(kNs, "Course", next_course++);
          builder.Add(course, p_type, c_course);
          builder.Add(prof, p_teacher_of, course);
          courses.push_back(course);
        }
        const uint64_t num_pubs = rng.Between(1, 3);
        for (uint64_t pb = 0; pb < num_pubs; ++pb) {
          const std::string pub = MakeIri(kNs, "Publication", next_pub++);
          builder.Add(pub, p_type, c_publication);
          builder.Add(pub, p_pub_author, prof);
        }
      }

      // Graduate students.
      const uint64_t num_grads = rng.Between(3, 8);
      for (uint64_t s = 0; s < num_grads; ++s) {
        const std::string grad = MakeIri(kNs, "GradStudent", next_person++);
        builder.Add(grad, p_type, c_grad_student);
        builder.Add(grad, p_member_of, dept);
        builder.Add(grad, p_advisor, faculty[rng.Below(faculty.size())]);
        builder.Add(grad, p_name, MakeLiteral("Name", next_literal++));
        // ~30% stayed at their own university (gives LQ2 its matches:
        // students whose degree university is the one their department
        // belongs to).
        builder.Add(grad, p_ug_degree,
                    rng.Chance(0.3) ? univ : random_other_univ(u));
        if (!courses.empty()) {
          builder.Add(grad, p_takes_course,
                      courses[rng.Below(courses.size())]);
          if (rng.Chance(0.4)) {
            builder.Add(grad, p_ta_of, courses[rng.Below(courses.size())]);
          }
        }
      }

      // Undergraduate students.
      const uint64_t num_ugs = rng.Between(8, 20);
      for (uint64_t s = 0; s < num_ugs; ++s) {
        const std::string ug = MakeIri(kNs, "UgStudent", next_person++);
        builder.Add(ug, p_type, c_ug_student);
        builder.Add(ug, p_member_of, dept);
        builder.Add(ug, p_email, MakeLiteral("Email", next_literal++));
        const uint64_t num_taken = rng.Between(1, 3);
        for (uint64_t c = 0; c < num_taken && !courses.empty(); ++c) {
          builder.Add(ug, p_takes_course,
                      courses[rng.Below(courses.size())]);
        }
        if (rng.Chance(0.3)) {
          builder.Add(ug, p_advisor, faculty[rng.Below(faculty.size())]);
        }
      }
    }
  }

  GeneratedDataset dataset;
  dataset.name = "LUBM";
  dataset.graph = builder.Build();

  // Benchmark queries. Constants reference university/department/course 0,
  // which exist at every scale. 10 stars; LQ2/LQ8/LQ9/LQ12 are non-star.
  const std::string univ0 = univ_iri(0);
  const std::string dept0 = MakeIri(kNs, "Department", 0);
  const std::string course0 = MakeIri(kNs, "Course", 0);
  const std::string prof0 = MakeIri(kNs, "Professor", 0);

  auto q = [&dataset](const char* name, std::string sparql, bool star) {
    dataset.benchmark_queries.push_back(
        NamedQuery{name, std::move(sparql), star});
  };

  q("LQ1",
    "SELECT ?x WHERE { ?x " + p_takes_course + " " + course0 + " . ?x " +
        p_type + " " + c_grad_student + " . }",
    true);
  q("LQ2",
    "SELECT ?x ?y ?z WHERE { ?x " + p_member_of + " ?z . ?z " + p_sub_org +
        " ?y . ?x " + p_ug_degree + " ?y . }",
    false);
  q("LQ3",
    "SELECT ?x WHERE { ?x " + p_type + " " + c_publication + " . ?x " +
        p_pub_author + " " + prof0 + " . }",
    true);
  q("LQ4",
    "SELECT ?x ?n ?e ?t WHERE { ?x " + p_works_for + " " + dept0 +
        " . ?x " + p_name + " ?n . ?x " + p_email + " ?e . ?x " + p_phone +
        " ?t . }",
    true);
  q("LQ5",
    "SELECT ?x WHERE { ?x " + p_member_of + " " + dept0 + " . ?x " +
        p_type + " " + c_ug_student + " . }",
    true);
  q("LQ6", "SELECT ?x ?y WHERE { ?x " + p_member_of + " ?y . }", true);
  q("LQ7",
    "SELECT ?x WHERE { ?x " + p_takes_course + " " + course0 + " . ?x " +
        p_type + " " + c_ug_student + " . }",
    true);
  q("LQ8",
    "SELECT ?x ?y ?z WHERE { ?x " + p_member_of + " ?y . ?y " + p_sub_org +
        " " + univ0 + " . ?x " + p_email + " ?z . }",
    false);
  q("LQ9",
    "SELECT ?x ?y ?z WHERE { ?x " + p_advisor + " ?y . ?y " +
        p_teacher_of + " ?z . ?x " + p_takes_course + " ?z . }",
    false);
  q("LQ10",
    "SELECT ?x WHERE { ?x " + p_takes_course + " " + course0 + " . }",
    true);
  q("LQ11",
    "SELECT ?x WHERE { ?x " + p_sub_org + " " + univ0 + " . ?x " + p_type +
        " " + c_department + " . }",
    true);
  q("LQ12",
    "SELECT ?x ?y WHERE { ?x " + p_head_of + " ?y . ?y " + p_sub_org +
        " " + univ0 + " . ?x " + p_type + " " + c_full_prof + " . }",
    false);
  q("LQ13",
    "SELECT ?x WHERE { ?x " + p_ug_degree + " " + univ0 + " . }", true);
  q("LQ14",
    "SELECT ?x WHERE { ?x " + p_type + " " + c_ug_student + " . }", true);

  return dataset;
}

}  // namespace mpc::workload

#include "workload/dbpedia.h"

#include <string>
#include <vector>

namespace mpc::workload {

namespace {
constexpr const char* kNs = "dbpedia";
}

GeneratedDataset MakeDbpedia(const DbpediaOptions& options) {
  Rng rng(options.seed);
  rdf::GraphBuilder builder;

  const std::string p_type = RdfTypeIri();

  // 63 head properties with globally-drawn endpoints.
  std::vector<std::string> head_props;
  for (int i = 0; i < 63; ++i) {
    head_props.push_back(MakeProperty(kNs, "head" + std::to_string(i)));
  }

  // Long-tail infobox properties; usage frequency is Zipf(1.1), so most
  // appear on a handful of triples — the real DBpedia shape the paper's
  // Section VI-B discussion relies on ("the more properties an RDF graph
  // has, the smaller the maximal WCC per property").
  std::vector<std::string> tail_props;
  tail_props.reserve(options.num_tail_properties);
  for (uint32_t i = 0; i < options.num_tail_properties; ++i) {
    tail_props.push_back(MakeProperty(kNs, "infobox" + std::to_string(i)));
  }
  ZipfSampler tail_sampler(tail_props.size(), 1.1);

  std::vector<std::string> classes;
  for (const char* name :
       {"Person", "Place", "Work", "Organisation", "Species", "Event"}) {
    classes.push_back(MakeIri(kNs, std::string("class/") + name, 0));
  }

  std::vector<std::string> all_entities;
  uint64_t next_entity = 0, next_literal = 0;

  for (uint32_t c = 0; c < options.num_clusters; ++c) {
    std::vector<std::string> cluster;
    const uint64_t size = rng.Between(10, 40);
    for (uint64_t i = 0; i < size; ++i) {
      std::string entity = MakeIri(kNs, "Resource", next_entity++);
      builder.Add(entity, p_type, classes[rng.Below(classes.size())]);
      // Infobox attributes: tail properties with literal values.
      const uint64_t num_attrs = rng.Between(3, 8);
      for (uint64_t a = 0; a < num_attrs; ++a) {
        builder.Add(entity, tail_props[tail_sampler.Sample(rng)],
                    MakeLiteral("V", next_literal++));
      }
      cluster.push_back(std::move(entity));
    }
    // Intra-cluster infobox object properties (tail, entity-valued).
    const uint64_t num_links = size * 2;
    for (uint64_t l = 0; l < num_links; ++l) {
      const std::string& a = cluster[rng.Below(cluster.size())];
      const std::string& b = cluster[rng.Below(cluster.size())];
      builder.Add(a, tail_props[tail_sampler.Sample(rng)], b);
    }
    for (std::string& e : cluster) all_entities.push_back(std::move(e));
  }

  // Head-property links across the whole graph (wiki page links etc.).
  // One per entity on average: the real DBpedia's head properties are
  // frequent in absolute terms but still a modest share of all triples,
  // which is what lets ~75% of logged queries stay internal under MPC.
  const uint64_t num_head_links = all_entities.size();
  for (uint64_t l = 0; l < num_head_links; ++l) {
    const std::string& a = all_entities[rng.Below(all_entities.size())];
    const std::string& b = all_entities[rng.Below(all_entities.size())];
    builder.Add(a, head_props[rng.Below(head_props.size())], b);
  }

  GeneratedDataset dataset;
  dataset.name = "DBpedia";
  dataset.graph = builder.Build();
  return dataset;
}

}  // namespace mpc::workload

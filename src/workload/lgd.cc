#include "workload/lgd.h"

#include <string>
#include <vector>

namespace mpc::workload {

namespace {
constexpr const char* kNs = "lgd";
}

GeneratedDataset MakeLgd(const LgdOptions& options) {
  Rng rng(options.seed);
  rdf::GraphBuilder builder;

  const std::string p_type = RdfTypeIri();
  const std::string p_way_member = MakeProperty(kNs, "wayMember");
  const std::string p_next_segment = MakeProperty(kNs, "nextSegment");
  const std::string p_crosses_tile = MakeProperty(kNs, "crossesTile");
  const std::string p_adjacent_to = MakeProperty(kNs, "adjacentTo");
  const std::string p_in_country = MakeProperty(kNs, "inCountry");

  std::vector<std::string> tag_props;
  tag_props.reserve(options.num_tag_properties);
  for (uint32_t i = 0; i < options.num_tag_properties; ++i) {
    tag_props.push_back(MakeProperty(kNs, "tag" + std::to_string(i)));
  }
  ZipfSampler tag_sampler(tag_props.size(), 1.05);

  std::vector<std::string> classes;
  for (const char* name : {"Node", "Way", "Relation", "Amenity"}) {
    classes.push_back(MakeIri(kNs, std::string("class/") + name, 0));
  }
  std::vector<std::string> countries;
  for (uint64_t c = 0; c < 12; ++c) {
    countries.push_back(MakeIri(kNs, "Country", c));
  }

  uint64_t next_entity = 0, next_literal = 0;
  std::vector<std::string> tile_representatives;

  for (uint32_t t = 0; t < options.num_tiles; ++t) {
    std::vector<std::string> tile;
    const uint64_t size = rng.Between(20, 60);
    for (uint64_t i = 0; i < size; ++i) {
      std::string entity = MakeIri(kNs, "Feature", next_entity++);
      builder.Add(entity, p_type, classes[rng.Below(classes.size())]);
      const uint64_t num_tags = rng.Between(2, 6);
      for (uint64_t a = 0; a < num_tags; ++a) {
        builder.Add(entity, tag_props[tag_sampler.Sample(rng)],
                    MakeLiteral("V", next_literal++));
      }
      if (rng.Chance(0.1)) {
        builder.Add(entity, p_in_country,
                    countries[rng.Below(countries.size())]);
      }
      tile.push_back(std::move(entity));
    }
    // Tile-local geometry: tag-property links between features.
    const uint64_t num_links = size / 2;
    for (uint64_t l = 0; l < num_links; ++l) {
      const std::string& a = tile[rng.Below(tile.size())];
      const std::string& b = tile[rng.Below(tile.size())];
      builder.Add(a, tag_props[tag_sampler.Sample(rng)], b);
    }
    // Global connectivity: ways spanning tiles.
    if (!tile_representatives.empty()) {
      const std::string& prev =
          tile_representatives[rng.Below(tile_representatives.size())];
      builder.Add(tile[0], p_way_member, prev);
      builder.Add(tile[0], p_next_segment, prev);
      if (rng.Chance(0.5)) builder.Add(tile[0], p_crosses_tile, prev);
      if (rng.Chance(0.5)) builder.Add(tile[0], p_adjacent_to, prev);
    }
    tile_representatives.push_back(tile[0]);
  }

  GeneratedDataset dataset;
  dataset.name = "LGD";
  dataset.graph = builder.Build();
  return dataset;
}

}  // namespace mpc::workload

#ifndef MPC_WORKLOAD_WATDIV_H_
#define MPC_WORKLOAD_WATDIV_H_

#include <cstdint>

#include "workload/generator_util.h"

namespace mpc::workload {

/// Scaled-down analogue of WatDiv [4]: 86 properties over an e-commerce
/// schema (users, products, reviews, retailers) organized into
/// communities. Entities are deliberately homogeneous — most share the
/// same common properties, and a sizable block of *global* properties
/// (purchases, likes, follows, linksTo, ...) connects entities across
/// communities. Those global properties plus rdf:type and the shared
/// country attribute form giant WCCs, so MPC's crossing set stays around
/// 17 while edge/hash baselines cut ~31 properties — the Table II shape.
struct WatdivOptions {
  uint32_t num_communities = 150;
  uint64_t seed = 43;
};

GeneratedDataset MakeWatdiv(const WatdivOptions& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_WATDIV_H_

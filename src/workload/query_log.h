#ifndef MPC_WORKLOAD_QUERY_LOG_H_
#define MPC_WORKLOAD_QUERY_LOG_H_

#include <cstdint>
#include <vector>

#include "rdf/graph.h"
#include "workload/generator_util.h"

namespace mpc::workload {

/// Shape profile for a synthetic query log, standing in for the LSQ real
/// logs [30] the paper samples for WatDiv/DBpedia/LGD. Queries are built
/// by sampling actual stars and walks from the data graph, so every
/// generated query has at least one match (the sampled witness).
struct QueryLogOptions {
  size_t num_queries = 1000;
  uint64_t seed = 7;
  /// Fraction of star-shaped queries (the rest are paths/walks).
  double star_fraction = 0.5;
  /// Fraction of queries that are a single triple pattern (counted as
  /// stars; LGD's log is dominated by these).
  double single_pattern_fraction = 0.1;
  /// Probability that a non-center endpoint is a constant.
  double constant_fraction = 0.4;
  /// Probability that one predicate of a query is a variable.
  double var_predicate_fraction = 0.02;
  uint32_t min_star_edges = 2;
  uint32_t max_star_edges = 4;
  uint32_t min_path_edges = 2;
  uint32_t max_path_edges = 3;
};

/// Generates a query log over `graph`.
std::vector<NamedQuery> GenerateQueryLog(const rdf::RdfGraph& graph,
                                         const QueryLogOptions& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_QUERY_LOG_H_

#include "workload/bio2rdf.h"

#include <string>
#include <vector>

namespace mpc::workload {

namespace {
constexpr const char* kNs = "bio2rdf";
}

GeneratedDataset MakeBio2Rdf(const Bio2RdfOptions& options) {
  Rng rng(options.seed);
  rdf::GraphBuilder builder;

  const std::string p_type = RdfTypeIri();

  // 35 cross-dataset reference properties (global connectors).
  std::vector<std::string> xref_props;
  for (int i = 0; i < 35; ++i) {
    xref_props.push_back(MakeProperty(kNs, "xref" + std::to_string(i)));
  }

  // Per-module property vocabularies: ~61-62 each so that
  // 1 + 35 + sum(module props) ≈ 1,581 at the default 25 modules.
  const uint32_t props_per_module =
      options.num_modules > 0
          ? static_cast<uint32_t>((1581 - 1 - 35) / options.num_modules)
          : 0;
  std::vector<std::vector<std::string>> module_props(options.num_modules);
  for (uint32_t m = 0; m < options.num_modules; ++m) {
    for (uint32_t i = 0; i < props_per_module; ++i) {
      module_props[m].push_back(MakeProperty(
          kNs, "ds" + std::to_string(m) + "_p" + std::to_string(i)));
    }
  }

  std::vector<std::string> classes;
  for (const char* name :
       {"Drug", "Gene", "Protein", "Pathway", "Article"}) {
    classes.push_back(MakeIri(kNs, std::string("class/") + name, 0));
  }

  // Record clusters inside each module; records link locally via the
  // module's vocabulary; some records carry xrefs to random records of
  // other modules.
  std::vector<std::string> all_records;
  uint64_t next_record = 0, next_literal = 0;
  std::vector<std::pair<std::string, uint32_t>> pending_xrefs;

  for (uint32_t m = 0; m < options.num_modules; ++m) {
    const auto& props = module_props[m];
    for (uint32_t c = 0; c < options.clusters_per_module; ++c) {
      std::vector<std::string> cluster;
      const uint64_t size = rng.Between(4, 10);
      for (uint64_t i = 0; i < size; ++i) {
        std::string rec = MakeIri(kNs, "Record", next_record++);
        builder.Add(rec, p_type, classes[rng.Below(classes.size())]);
        const uint64_t num_attrs = rng.Between(2, 4);
        for (uint64_t a = 0; a < num_attrs; ++a) {
          builder.Add(rec, props[rng.Below(props.size())],
                      MakeLiteral("V", next_literal++));
        }
        cluster.push_back(std::move(rec));
      }
      const uint64_t num_links = size;
      for (uint64_t l = 0; l < num_links; ++l) {
        const std::string& a = cluster[rng.Below(cluster.size())];
        const std::string& b = cluster[rng.Below(cluster.size())];
        builder.Add(a, props[rng.Below(props.size())], b);
      }
      if (rng.Chance(0.5)) {
        pending_xrefs.emplace_back(cluster[0],
                                   static_cast<uint32_t>(
                                       rng.Below(xref_props.size())));
      }
      // Witness structures so the benchmark queries below have matches:
      // some module-0 clusters carry a p5->p6->p7 chain (BQ4) and a
      // record with the BQ3/BQ5 attribute stars.
      if (m == 0 && cluster.size() >= 4 && rng.Chance(0.3)) {
        builder.Add(cluster[0], props[5], cluster[1]);
        builder.Add(cluster[1], props[6], cluster[2]);
        builder.Add(cluster[2], props[7], cluster[3]);
        for (int a = 2; a <= 4; ++a) {
          builder.Add(cluster[1], props[a], MakeLiteral("V", next_literal++));
        }
        for (int a = 8; a <= 10; ++a) {
          builder.Add(cluster[2], props[a], MakeLiteral("V", next_literal++));
        }
      }
      for (std::string& r : cluster) all_records.push_back(std::move(r));
    }
  }
  for (const auto& [record, xref] : pending_xrefs) {
    builder.Add(record, xref_props[xref],
                all_records[rng.Below(all_records.size())]);
  }

  // Guarantee BQ1/BQ2 witnesses on record 0.
  const std::string record0 = MakeIri(kNs, "Record", 0);
  builder.Add(record0, module_props[0][0], MakeLiteral("V", next_literal++));
  builder.Add(record0, module_props[0][1], MakeLiteral("V", next_literal++));
  builder.Add(record0, p_type, MakeIri(kNs, "class/Drug", 0));

  GeneratedDataset dataset;
  dataset.name = "Bio2RDF";
  dataset.graph = builder.Build();

  // BQ1-BQ5: four stars (BQ1-BQ3, BQ5) + the non-star BQ4 that only MPC
  // executes independently (Fig. 7).
  const std::string rec0 = MakeIri(kNs, "Record", 0);
  const auto& m0 = module_props[0];
  auto q = [&dataset](const char* name, std::string sparql, bool star) {
    dataset.benchmark_queries.push_back(
        NamedQuery{name, std::move(sparql), star});
  };
  q("BQ1",
    "SELECT ?v WHERE { " + rec0 + " " + m0[0] + " ?v . " + rec0 + " " +
        m0[1] + " ?w . }",
    true);
  q("BQ2",
    "SELECT ?x WHERE { ?x " + m0[0] + " ?v . ?x " + p_type + " " +
        MakeIri(kNs, "class/Drug", 0) + " . }",
    true);
  q("BQ3",
    "SELECT ?x ?a ?b WHERE { ?x " + m0[2] + " ?a . ?x " + m0[3] +
        " ?b . ?x " + m0[4] + " ?c . }",
    true);
  q("BQ4",
    "SELECT ?x ?y ?z WHERE { ?x " + m0[5] + " ?y . ?y " + m0[6] +
        " ?z . ?z " + m0[7] + " ?w . }",
    false);
  q("BQ5",
    "SELECT ?x WHERE { ?x " + m0[8] + " ?v . ?x " + m0[9] + " ?w . ?x " +
        m0[10] + " ?u . }",
    true);
  return dataset;
}

}  // namespace mpc::workload

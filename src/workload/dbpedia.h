#ifndef MPC_WORKLOAD_DBPEDIA_H_
#define MPC_WORKLOAD_DBPEDIA_H_

#include <cstdint>

#include "workload/generator_util.h"

namespace mpc::workload {

/// Scaled-down analogue of DBpedia [23]: a very large, long-tail property
/// vocabulary (default 12,000 infobox-style properties with Zipf-ian
/// frequencies, standing in for the real 124k) used inside topic
/// clusters, plus ~63 head properties (wikiPageLink-, subject-,
/// dbo:ontology-style) with global endpoints. The head properties plus
/// rdf:type form giant WCCs and become MPC's crossing set (Table II:
/// |L_cross| = 64 on DBpedia), while the long tail is internal — the
/// regime where MPC's advantage over hash/edge-cut baselines is largest.
struct DbpediaOptions {
  uint32_t num_clusters = 400;
  uint32_t num_tail_properties = 12000;
  uint64_t seed = 46;
};

GeneratedDataset MakeDbpedia(const DbpediaOptions& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_DBPEDIA_H_

#ifndef MPC_WORKLOAD_LGD_H_
#define MPC_WORKLOAD_LGD_H_

#include <cstdint>

#include "workload/generator_util.h"

namespace mpc::workload {

/// Scaled-down analogue of LinkedGeoData (LGD) [33]: a spatial RDF graph
/// of OpenStreetMap-style nodes and ways grouped into map tiles. Tag
/// properties (the bulk of the ~4,000-property vocabulary, Zipf
/// distributed) attach literals or tile-local entities; five global
/// connectivity properties (wayMember, nextSegment, crossesTile,
/// adjacentTo, inCountry) plus rdf:type span tiles and become MPC's
/// crossing set (Table II: |L_cross| = 6 on LGD).
struct LgdOptions {
  uint32_t num_tiles = 300;
  uint32_t num_tag_properties = 4000;
  uint64_t seed = 47;
};

GeneratedDataset MakeLgd(const LgdOptions& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_LGD_H_

#ifndef MPC_WORKLOAD_BIO2RDF_H_
#define MPC_WORKLOAD_BIO2RDF_H_

#include <cstdint>

#include "workload/generator_util.h"

namespace mpc::workload {

/// Scaled-down analogue of Bio2RDF [7]: ~1,581 properties across ~25
/// life-science sub-datasets (drugbank-, kegg-, pubmed-like modules).
/// Each module's properties are namespaced to it and connect records
/// inside small local clusters; 35 cross-reference (xref) properties plus
/// rdf:type link records across modules and form the giant WCCs that end
/// up as MPC's crossing set (Table II: |L_cross| = 36 on Bio2RDF).
/// Benchmark queries BQ1-BQ5 [2]: four stars plus the non-star BQ4.
struct Bio2RdfOptions {
  uint32_t num_modules = 25;
  uint32_t clusters_per_module = 60;
  uint64_t seed = 45;
};

GeneratedDataset MakeBio2Rdf(const Bio2RdfOptions& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_BIO2RDF_H_

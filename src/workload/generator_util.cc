#include "workload/generator_util.h"

namespace mpc::workload {

std::string MakeIri(const std::string& ns, const std::string& kind,
                    uint64_t id) {
  return "<http://example.org/" + ns + "/" + kind + std::to_string(id) + ">";
}

std::string MakeLiteral(const std::string& kind, uint64_t id) {
  return "\"" + kind + std::to_string(id) + "\"";
}

std::string MakeProperty(const std::string& ns, const std::string& name) {
  return "<http://example.org/" + ns + "#" + name + ">";
}

const std::string& RdfTypeIri() {
  static const std::string kIri =
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>";
  return kIri;
}

}  // namespace mpc::workload

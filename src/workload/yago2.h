#ifndef MPC_WORKLOAD_YAGO2_H_
#define MPC_WORKLOAD_YAGO2_H_

#include <cstdint>

#include "workload/generator_util.h"

namespace mpc::workload {

/// Scaled-down analogue of YAGO2 [14]: 98 properties over a knowledge
/// base of people, creative works and places organized in local
/// neighborhoods (biographies, filmographies). Five properties are
/// global connectors — rdf:type, linksTo (wiki links), locatedIn,
/// citizenOf, livesIn — and become MPC's crossing set (Table II reports
/// |L_cross| = 5 for YAGO2); everything else is neighborhood-local.
/// The four benchmark queries YQ1-YQ4 [2] are all non-star and touch only
/// local properties, which is why Table III shows 100% IEQs under MPC and
/// 0% under every baseline.
struct Yago2Options {
  uint32_t num_neighborhoods = 150;
  uint64_t seed = 44;
};

GeneratedDataset MakeYago2(const Yago2Options& options);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_YAGO2_H_

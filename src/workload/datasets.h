#ifndef MPC_WORKLOAD_DATASETS_H_
#define MPC_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/query_log.h"
#include "workload/generator_util.h"

namespace mpc::workload {

/// The six evaluation datasets of Table I.
enum class DatasetId {
  kLubm,
  kWatdiv,
  kYago2,
  kBio2rdf,
  kDbpedia,
  kLgd,
};

const char* DatasetName(DatasetId id);

/// All six ids, in Table I order.
std::vector<DatasetId> AllDatasets();

/// Generates a dataset at `scale` (1.0 = the repro default size; the
/// paper's absolute sizes are ~1000x larger, see DESIGN.md §2.4) with a
/// reproducible seed. Benchmark-query datasets (LUBM, YAGO2, Bio2RDF)
/// carry their query sets; the others use MakeQueryLog.
GeneratedDataset MakeDataset(DatasetId id, double scale = 1.0,
                             uint64_t seed = 1);

/// The per-dataset query-log profile the paper's Table III mix implies
/// (WatDiv ~50% stars, DBpedia ~47%, LGD ~97% incl. one-triple queries).
QueryLogOptions QueryLogProfile(DatasetId id);

/// Convenience: profile-based log of `n` queries over `graph`.
std::vector<NamedQuery> MakeQueryLog(DatasetId id,
                                     const rdf::RdfGraph& graph, size_t n,
                                     uint64_t seed = 7);

}  // namespace mpc::workload

#endif  // MPC_WORKLOAD_DATASETS_H_

#include "workload/query_log.h"

#include <algorithm>
#include <string>

#include "common/random.h"

namespace mpc::workload {

namespace {

/// Incidence index: for each vertex, the triples it appears in (as
/// subject or object), used to sample stars and walks from the data.
class Incidence {
 public:
  explicit Incidence(const rdf::RdfGraph& graph) : graph_(graph) {
    offsets_.assign(graph.num_vertices() + 1, 0);
    const auto& triples = graph.triples();
    for (const rdf::Triple& t : triples) {
      ++offsets_[t.subject + 1];
      if (t.object != t.subject) ++offsets_[t.object + 1];
    }
    for (size_t v = 0; v < graph.num_vertices(); ++v) {
      offsets_[v + 1] += offsets_[v];
    }
    incident_.resize(offsets_.back());
    std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < triples.size(); ++i) {
      incident_[cursor[triples[i].subject]++] = i;
      if (triples[i].object != triples[i].subject) {
        incident_[cursor[triples[i].object]++] = i;
      }
    }
  }

  size_t Degree(rdf::VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  /// The i-th incident triple index of v.
  size_t TripleAt(rdf::VertexId v, size_t i) const {
    return incident_[offsets_[v] + i];
  }

 private:
  const rdf::RdfGraph& graph_;
  std::vector<uint64_t> offsets_;
  std::vector<size_t> incident_;
};

class LogBuilder {
 public:
  LogBuilder(const rdf::RdfGraph& graph, const QueryLogOptions& options)
      : graph_(graph),
        options_(options),
        incidence_(graph),
        rng_(options.seed),
        type_property_(graph.property_dict().Lookup(
            "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>")) {}

  std::vector<NamedQuery> Generate() {
    std::vector<NamedQuery> log;
    log.reserve(options_.num_queries);
    while (log.size() < options_.num_queries) {
      // The shape is drawn once per query and retried on sampling
      // failure; re-rolling the shape would bias the log toward the
      // easiest-to-sample shape (stars) and skew the Table III mix.
      double roll = rng_.NextDouble();
      NamedQuery q;
      bool ok = false;
      for (int attempt = 0; attempt < 50 && !ok; ++attempt) {
        if (roll < options_.single_pattern_fraction) {
          ok = SampleSingle(&q);
        } else if (roll < options_.single_pattern_fraction +
                              options_.star_fraction) {
          ok = SampleStar(&q);
        } else {
          ok = SamplePath(&q);
        }
      }
      if (!ok) {
        // Pathological graph for this shape; fall back to a single
        // pattern so generation always terminates.
        SampleSingle(&q);
      }
      q.name = "Q" + std::to_string(log.size() + 1);
      log.push_back(std::move(q));
    }
    return log;
  }

 private:
  const rdf::Triple& RandomTriple() {
    return graph_.triples()[rng_.Below(graph_.num_edges())];
  }

  std::string VertexText(rdf::VertexId v) { return graph_.VertexName(v); }
  std::string PropText(rdf::PropertyId p) { return graph_.PropertyName(p); }

  /// One triple pattern around a sampled triple: "?x <p> <o>" /
  /// "?x <p> ?y" / "<s> <p> ?y" variants.
  bool SampleSingle(NamedQuery* q) {
    const rdf::Triple& t = RandomTriple();
    std::string s = rng_.Chance(options_.constant_fraction)
                        ? VertexText(t.subject)
                        : "?x";
    std::string o = rng_.Chance(options_.constant_fraction)
                        ? VertexText(t.object)
                        : "?y";
    if (s[0] != '?' && o[0] != '?') o = "?y";  // keep >=1 variable
    std::string p = rng_.Chance(options_.var_predicate_fraction)
                        ? "?p"
                        : PropText(t.property);
    q->sparql = "SELECT * WHERE { " + s + " " + p + " " + o + " . }";
    q->is_star = true;
    return true;
  }

  bool SampleStar(NamedQuery* q) {
    // Center: subject of a random triple (subjects always have >=1
    // outgoing edge; stars mix incident directions).
    const rdf::Triple& seed = RandomTriple();
    rdf::VertexId center = seed.subject;
    size_t degree = incidence_.Degree(center);
    if (degree < 2) return false;
    uint32_t want = static_cast<uint32_t>(rng_.Between(
        options_.min_star_edges, options_.max_star_edges));
    // Sample distinct incident triples.
    std::vector<size_t> chosen;
    for (uint32_t tries = 0; tries < want * 4 && chosen.size() < want;
         ++tries) {
      size_t ti = incidence_.TripleAt(center, rng_.Below(degree));
      if (std::find(chosen.begin(), chosen.end(), ti) == chosen.end()) {
        chosen.push_back(ti);
      }
    }
    if (chosen.size() < 2) return false;

    bool used_var_pred = false;
    std::string body;
    int leaf = 0;
    for (size_t ti : chosen) {
      const rdf::Triple& t = graph_.triples()[ti];
      std::string pred = PropText(t.property);
      if (!used_var_pred && rng_.Chance(options_.var_predicate_fraction)) {
        pred = "?p";
        used_var_pred = true;
      }
      const bool outgoing = (t.subject == center);
      rdf::VertexId other = outgoing ? t.object : t.subject;
      std::string other_text = rng_.Chance(options_.constant_fraction)
                                   ? VertexText(other)
                                   : "?v" + std::to_string(leaf);
      ++leaf;
      if (outgoing) {
        body += " ?x " + pred + " " + other_text + " .";
      } else {
        body += " " + other_text + " " + pred + " ?x .";
      }
    }
    q->sparql = "SELECT * WHERE {" + body + " }";
    q->is_star = true;
    return true;
  }

  bool SamplePath(NamedQuery* q) {
    const uint32_t want = static_cast<uint32_t>(rng_.Between(
        options_.min_path_edges, options_.max_path_edges));
    const rdf::Triple& seed = RandomTriple();
    // Walk: v0 -t0- v1 -t1- v2 ... following incident edges.
    std::vector<size_t> walk{
        static_cast<size_t>(&seed - graph_.triples().data())};
    rdf::VertexId frontier =
        rng_.Chance(0.5) ? seed.object : seed.subject;
    rdf::VertexId tail = (frontier == seed.object) ? seed.subject
                                                   : seed.object;
    while (walk.size() < want) {
      size_t degree = incidence_.Degree(frontier);
      if (degree == 0) break;
      // Real path queries constrain with rdf:type but do not chain
      // through it (class IRIs are hub vertices); skip type edges when
      // extending, with a bounded number of redraws.
      size_t ti = SIZE_MAX;
      for (int redraw = 0; redraw < 6; ++redraw) {
        size_t candidate = incidence_.TripleAt(frontier, rng_.Below(degree));
        if (graph_.triples()[candidate].property == type_property_) {
          continue;
        }
        if (std::find(walk.begin(), walk.end(), candidate) != walk.end()) {
          continue;
        }
        ti = candidate;
        break;
      }
      if (ti == SIZE_MAX) break;
      const rdf::Triple& t = graph_.triples()[ti];
      walk.push_back(ti);
      frontier = (t.subject == frontier) ? t.object : t.subject;
    }
    // A walk that stalled below the requested minimum is rejected (a
    // 2-edge walk is star-shaped, which would skew the profile's
    // star/non-star mix).
    if (walk.size() < std::max<uint32_t>(2, options_.min_path_edges)) {
      return false;
    }

    // Variable names per data vertex along the walk.
    std::vector<std::pair<rdf::VertexId, std::string>> names;
    auto name_of = [&](rdf::VertexId v) -> std::string {
      for (auto& [vertex, name] : names) {
        if (vertex == v) return name;
      }
      names.emplace_back(v, "?v" + std::to_string(names.size()));
      return names.back().second;
    };
    bool used_var_pred = false;
    std::string body;
    for (size_t ti : walk) {
      const rdf::Triple& t = graph_.triples()[ti];
      std::string pred = PropText(t.property);
      if (!used_var_pred && rng_.Chance(options_.var_predicate_fraction)) {
        pred = "?p";
        used_var_pred = true;
      }
      body += " " + name_of(t.subject) + " " + pred + " " +
              name_of(t.object) + " .";
    }
    // Optionally anchor one endpoint with its data constant.
    if (rng_.Chance(options_.constant_fraction)) {
      std::string tail_name = name_of(tail);
      size_t pos = body.find(tail_name);
      // Replace every occurrence of the tail variable with the constant.
      std::string constant = VertexText(tail);
      while (pos != std::string::npos) {
        body.replace(pos, tail_name.size(), constant);
        pos = body.find(tail_name, pos + constant.size());
      }
    }
    if (body.find('?') == std::string::npos) return false;
    q->sparql = "SELECT * WHERE {" + body + " }";
    // A 2-edge walk sharing its middle vertex is star-shaped iff both
    // edges are incident to one vertex — true for length-2 paths.
    q->is_star = walk.size() <= 2;
    return true;
  }

  const rdf::RdfGraph& graph_;
  QueryLogOptions options_;
  Incidence incidence_;
  Rng rng_;
  /// rdf:type's id in this graph, or kInvalidVertex when absent.
  rdf::PropertyId type_property_;
};

}  // namespace

std::vector<NamedQuery> GenerateQueryLog(const rdf::RdfGraph& graph,
                                         const QueryLogOptions& options) {
  LogBuilder builder(graph, options);
  return builder.Generate();
}

}  // namespace mpc::workload

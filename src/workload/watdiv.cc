#include "workload/watdiv.h"

#include <string>
#include <vector>

namespace mpc::workload {

namespace {
constexpr const char* kNs = "watdiv";
}

GeneratedDataset MakeWatdiv(const WatdivOptions& options) {
  Rng rng(options.seed);
  rdf::GraphBuilder builder;

  const std::string p_type = RdfTypeIri();

  // 15 global link properties: endpoints drawn uniformly across all
  // communities -> each forms one giant WCC -> crossing under MPC.
  std::vector<std::string> global_props;
  for (const char* name :
       {"purchases", "likes", "follows", "linksTo", "retailerOf",
        "recommends", "viewed", "bookmarked", "sharedWith", "trendingWith",
        "bundledWith", "shipsVia", "advertisedBy", "subscribesTo",
        "mirrors"}) {
    global_props.push_back(MakeProperty(kNs, name));
  }
  // Shared small-domain attribute: ~20 country vertices shared by all
  // users -> giant WCC -> crossing. Total expected |L_cross| = 17.
  const std::string p_country = MakeProperty(kNs, "country");

  // 39 community-local link properties.
  std::vector<std::string> local_props;
  for (const char* name :
       {"friendOf",     "reviewOf",     "rates",        "producedBy",
        "soldAt",       "variantOf",    "replacedBy",   "accessoryFor",
        "authoredBy",   "moderatedBy",  "memberOfClub", "attends",
        "organizes",    "repliesTo",    "mentions",     "taggedIn",
        "wishlists",    "returns",      "refundedBy",   "servicedBy",
        "installedBy",  "deliveredTo",  "pickedUpAt",   "assembledAt",
        "inspectedBy",  "certifiedBy",  "licensedTo",   "rentedBy",
        "leasedTo",     "tradedWith",   "giftedTo",     "repairedBy",
        "upgradedFrom", "clonedFrom",   "basedOn",      "inspiredBy",
        "competesWith", "partneredWith", "localGroupOf"}) {
    local_props.push_back(MakeProperty(kNs, name));
  }

  // 30 per-entity attribute properties (unique literal objects).
  std::vector<std::string> attr_props;
  for (const char* name :
       {"caption",   "text",      "price",     "sku",       "validFrom",
        "validTo",   "opens",     "closes",    "zip",       "street",
        "phoneNum",  "faxNum",    "url",       "height",    "weight",
        "width",     "depth",     "color",     "material",  "battery",
        "warranty",  "edition",   "isbn",      "issn",      "serial",
        "modelNum",  "firmware",  "nickname",  "bio",       "joinDate"}) {
    attr_props.push_back(MakeProperty(kNs, name));
  }
  // Total properties: 1 (type) + 15 + 1 + 39 + 30 = 86, matching Table I.

  std::vector<std::string> classes;
  for (const char* name : {"User", "Product", "Review", "Retailer"}) {
    classes.push_back(MakeIri(kNs, std::string("class/") + name, 0));
  }
  std::vector<std::string> countries;
  for (uint64_t c = 0; c < 20; ++c) {
    countries.push_back(MakeIri(kNs, "Country", c));
  }

  // Entities, grouped by community. entity_ids[c] lists community c's
  // entity IRIs; all_entities flattens them for global links.
  std::vector<std::vector<std::string>> community(options.num_communities);
  std::vector<std::string> all_entities;
  uint64_t next_entity = 0, next_literal = 0;

  for (uint32_t c = 0; c < options.num_communities; ++c) {
    const uint64_t size = rng.Between(20, 50);
    for (uint64_t i = 0; i < size; ++i) {
      std::string entity = MakeIri(kNs, "Entity", next_entity++);
      builder.Add(entity, p_type, classes[rng.Below(classes.size())]);
      // Homogeneous entities: each carries several common attributes.
      const uint64_t num_attrs = rng.Between(3, 6);
      for (uint64_t a = 0; a < num_attrs; ++a) {
        builder.Add(entity, attr_props[rng.Below(attr_props.size())],
                    MakeLiteral("V", next_literal++));
      }
      if (rng.Chance(0.5)) {
        builder.Add(entity, p_country, countries[rng.Below(countries.size())]);
      }
      community[c].push_back(std::move(entity));
    }
    // Community-local links: connect members of the same community.
    const uint64_t num_links = size * 2;
    for (uint64_t l = 0; l < num_links; ++l) {
      const std::string& a = community[c][rng.Below(community[c].size())];
      const std::string& b = community[c][rng.Below(community[c].size())];
      builder.Add(a, local_props[rng.Below(local_props.size())], b);
    }
    for (const std::string& e : community[c]) all_entities.push_back(e);
  }

  // Global links: uniform endpoints across communities.
  const uint64_t num_global = all_entities.size();
  for (uint64_t l = 0; l < num_global; ++l) {
    const std::string& a = all_entities[rng.Below(all_entities.size())];
    const std::string& b = all_entities[rng.Below(all_entities.size())];
    builder.Add(a, global_props[rng.Below(global_props.size())], b);
  }

  GeneratedDataset dataset;
  dataset.name = "WatDiv";
  dataset.graph = builder.Build();
  return dataset;
}

}  // namespace mpc::workload

#include "net/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/timer.h"
#include "obs/metrics.h"

namespace mpc::net {

namespace {

/// Process-epoch monotonic clock for respawn deadlines.
const Timer& Epoch() {
  static const Timer epoch;
  return epoch;
}

}  // namespace

SiteSupervisor::SiteSupervisor(std::vector<WorkerSpec> specs,
                               SupervisorOptions options)
    : options_(options) {
  workers_.reserve(specs.size());
  for (WorkerSpec& spec : specs) {
    Worker w;
    w.spec = std::move(spec);
    workers_.push_back(std::move(w));
  }
}

SiteSupervisor::~SiteSupervisor() { StopAll(); }

double SiteSupervisor::NowMillis() const { return Epoch().ElapsedMillis(); }

Status SiteSupervisor::Spawn(Worker* worker) {
  std::vector<char*> argv;
  argv.reserve(worker->spec.argv.size() + worker->spec.chaos_argv.size() + 1);
  for (std::string& arg : worker->spec.argv) argv.push_back(arg.data());
  if (worker->restarts == 0) {
    for (std::string& arg : worker->spec.chaos_argv) argv.push_back(arg.data());
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Child: become the worker. On exec failure there is nothing to
    // report into — exit with a loud code; the monitor reaps it.
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  worker->pid = pid;
  worker->alive = true;
  return Status::Ok();
}

Status SiteSupervisor::StartAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::Ok();
    for (Worker& worker : workers_) {
      MPC_RETURN_IF_ERROR(Spawn(&worker));
    }
    started_ = true;
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
  // Wait until every worker accepts — they load their partition first,
  // so this bounds worker startup, not just process creation.
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    MPC_RETURN_IF_ERROR(WaitUntilUp(i, options_.spawn_wait_ms));
  }
  return Status::Ok();
}

void SiteSupervisor::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    ReapAndRespawnLocked();
    state_changed_.wait_for(
        lock, std::chrono::duration<double, std::milli>(
                  options_.heartbeat_interval_ms));
  }
}

void SiteSupervisor::ReapAndRespawnLocked() {
  // Export into the global registry on every pass. Heartbeats here are
  // waitpid liveness probes, not socket pings: each worker serves one
  // connection at a time, so an in-band ping would queue behind the
  // coordinator's data traffic and measure the query, not the worker.
  auto& registry = obs::MetricsRegistry::Default();
  const Timer pass_timer;
  size_t alive = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = workers_[i];
    const std::string site = "net.supervisor.site_" + std::to_string(i);
    if (worker.alive) {
      int status = 0;
      const pid_t r = ::waitpid(worker.pid, &status, WNOHANG);
      if (r == worker.pid) {
        // The heartbeat noticed a death (crash, SIGKILL, clean exit).
        worker.alive = false;
        worker.pid = -1;
        registry.CounterRef("net.supervisor.deaths").Inc();
        registry.CounterRef(site + ".deaths").Inc();
        if (worker.restarts >= options_.max_restarts) {
          worker.gave_up = true;
          registry.CounterRef("net.supervisor.gave_up").Inc();
        } else {
          // Exponential backoff: restart r waits base * 2^r.
          worker.respawn_after_ms =
              NowMillis() + options_.restart_backoff_ms *
                                std::ldexp(1.0, worker.restarts);
        }
      }
    } else if (!worker.gave_up && worker.pid == -1 && started_ &&
               NowMillis() >= worker.respawn_after_ms) {
      ++worker.restarts;
      registry.CounterRef("net.supervisor.restarts").Inc();
      registry.CounterRef(site + ".restarts").Inc();
      (void)Spawn(&worker);  // fork failure: retried next tick
    }
    if (worker.alive) ++alive;
    registry.GaugeRef(site + ".up").Set(worker.alive ? 1.0 : 0.0);
  }
  registry.GaugeRef("net.supervisor.alive").Set(static_cast<double>(alive));
  registry
      .HistogramRef("net.supervisor.heartbeat_ms",
                    obs::DefaultLatencyBoundsMs())
      .Observe(pass_timer.ElapsedMillis());
}

Result<Socket> SiteSupervisor::Connect(uint32_t worker) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (worker >= workers_.size()) {
      return Status::InvalidArgument("no such worker");
    }
    if (workers_[worker].gave_up) {
      return Status::Unavailable(
          "worker " + std::to_string(worker) + " exhausted its restart "
          "budget (" + std::to_string(options_.max_restarts) + ")");
    }
  }
  return Socket::Connect(workers_[worker].spec.socket_path);
}

bool SiteSupervisor::IsAlive(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return worker < workers_.size() && workers_[worker].alive;
}

Status SiteSupervisor::WaitUntilUp(uint32_t worker, double timeout_ms) {
  Timer timer;
  for (;;) {
    Result<Socket> conn = Connect(worker);
    if (conn.ok()) return Status::Ok();
    if (conn.status().code() != StatusCode::kUnavailable) {
      return conn.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (workers_[worker].gave_up) return conn.status();
    }
    if (timer.ElapsedMillis() >= timeout_ms) {
      return Status::DeadlineExceeded(
          "worker " + std::to_string(worker) + " not accepting after " +
          std::to_string(timeout_ms) + " ms: " + conn.status().message());
    }
    ::usleep(5000);
  }
}

Status SiteSupervisor::Kill(uint32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("no such worker");
  }
  if (!workers_[worker].alive) {
    return Status::Unavailable("worker already dead");
  }
  ::kill(workers_[worker].pid, SIGKILL);
  // The monitor reaps it and handles the restart schedule.
  state_changed_.notify_all();
  return Status::Ok();
}

void SiteSupervisor::StopAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second call: workers were already torn down.
      return;
    }
    stopping_ = true;
    state_changed_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();

  // Graceful drain: SIGTERM asks each worker to finish its in-flight
  // request, flush metrics/trace, and exit 0.
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& worker : workers_) {
    if (worker.alive && worker.pid > 0) ::kill(worker.pid, SIGTERM);
  }
  Timer timer;
  for (Worker& worker : workers_) {
    if (!worker.alive || worker.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(worker.pid, &status, WNOHANG);
      if (r == worker.pid) break;
      if (timer.ElapsedMillis() > options_.drain_grace_ms) {
        // Grace expired: the hard way.
        ::kill(worker.pid, SIGKILL);
        ::waitpid(worker.pid, &status, 0);
        break;
      }
      ::usleep(2000);
    }
    worker.alive = false;
    worker.pid = -1;
  }
}

int SiteSupervisor::restarts(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_[worker].restarts;
}

pid_t SiteSupervisor::pid(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_[worker].pid;
}

}  // namespace mpc::net

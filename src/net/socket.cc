#include "net/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/timer.h"

namespace mpc::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Waits until fd is ready for `events` or the deadline passes.
/// timeout_ms <= 0 blocks indefinitely.
Status PollFor(int fd, short events, double timeout_ms) {
  Timer timer;
  for (;;) {
    int wait = -1;
    if (timeout_ms > 0) {
      const double left = timeout_ms - timer.ElapsedMillis();
      if (left <= 0) return Status::DeadlineExceeded("socket wait timed out");
      // Round up so a sub-millisecond remainder still polls once.
      wait = static_cast<int>(left) + 1;
    }
    struct pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, wait);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("poll failed");
    }
    if (n > 0) return Status::Ok();
    if (timeout_ms <= 0) continue;
  }
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Listen(const std::string& path) {
  sockaddr_un addr;
  MPC_RETURN_IF_ERROR(FillUnixAddr(path, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket failed");
  Socket sock(fd);
  ::unlink(path.c_str());  // a stale file from a killed worker
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind failed for " + path);
  }
  if (::listen(fd, 16) != 0) return Errno("listen failed for " + path);
  return sock;
}

Result<Socket> Socket::Connect(const std::string& path) {
  sockaddr_un addr;
  MPC_RETURN_IF_ERROR(FillUnixAddr(path, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket failed");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == ECONNREFUSED || errno == ENOENT) {
      return Status::Unavailable("no listener at " + path + ": " +
                                 std::strerror(errno));
    }
    return Errno("connect failed for " + path);
  }
  return sock;
}

Result<Socket> Socket::Accept(double timeout_ms) const {
  MPC_RETURN_IF_ERROR(PollFor(fd_, POLLIN, timeout_ms));
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return Socket(conn);
    if (errno == EINTR) continue;
    return Errno("accept failed");
  }
}

Status Socket::SendAll(const void* data, size_t n) const {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a dead peer must surface as a Status, not SIGPIPE.
    const ssize_t sent = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed during send");
      }
      return Errno("send failed");
    }
    off += static_cast<size_t>(sent);
  }
  return Status::Ok();
}

Status Socket::RecvExact(void* buf, size_t n, double timeout_ms) const {
  char* p = static_cast<char*>(buf);
  size_t off = 0;
  Timer timer;
  while (off < n) {
    double left = 0.0;  // 0 = no deadline
    if (timeout_ms > 0) {
      left = timeout_ms - timer.ElapsedMillis();
      if (left <= 0) return Status::DeadlineExceeded("recv timed out");
    }
    MPC_RETURN_IF_ERROR(PollFor(fd_, POLLIN, left));
    const ssize_t got = ::recv(fd_, p + off, n - off, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return off == 0 ? Status::Unavailable("peer closed connection")
                        : Status::ParseError("stream reset mid-message");
      }
      return Errno("recv failed");
    }
    if (got == 0) {
      // EOF. At offset 0 the peer closed between messages — an orderly
      // departure. Mid-message it tore the stream.
      return off == 0 ? Status::Unavailable("peer closed connection")
                      : Status::ParseError(
                            "stream truncated: EOF after " +
                            std::to_string(off) + " of " + std::to_string(n) +
                            " bytes");
    }
    off += static_cast<size_t>(got);
  }
  return Status::Ok();
}

}  // namespace mpc::net

#include "net/frame.h"

#include <cstdio>

#include "net/bytes.h"

namespace mpc::net {

uint64_t FrameChecksum(std::string_view payload) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : payload) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string EncodeFrame(uint16_t type, std::string_view payload) {
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U16(kProtocolVersion);
  w.U16(type);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U64(FrameChecksum(payload));
  w.Bytes(payload);
  return w.Take();
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::ParseError("frame header truncated: " +
                              std::to_string(bytes.size()) + " of " +
                              std::to_string(kFrameHeaderSize) + " bytes");
  }
  ByteReader r(bytes.substr(0, kFrameHeaderSize));
  uint32_t magic = 0;
  FrameHeader header;
  // Reads from a size-checked buffer cannot fail; decode in order.
  (void)r.U32(&magic);
  (void)r.U16(&header.version);
  (void)r.U16(&header.type);
  (void)r.U32(&header.payload_len);
  (void)r.U64(&header.checksum);
  if (magic != kFrameMagic) {
    return Status::ParseError("bad frame magic: got 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }() + ", want 0x5243504d (\"MPCR\")");
  }
  if (header.version != kProtocolVersion) {
    return Status::ParseError(
        "unsupported frame version " + std::to_string(header.version) +
        " (speak version " + std::to_string(kProtocolVersion) + ")");
  }
  if (header.payload_len > kMaxFramePayload) {
    return Status::ParseError("frame payload length " +
                              std::to_string(header.payload_len) +
                              " exceeds the 1 GiB frame cap");
  }
  return header;
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::string_view payload) {
  if (payload.size() != header.payload_len) {
    return Status::ParseError("frame payload size mismatch");
  }
  if (FrameChecksum(payload) != header.checksum) {
    return Status::ParseError(
        "frame checksum mismatch: payload corrupted in transit");
  }
  return Status::Ok();
}

Status WriteFrame(const Socket& socket, uint16_t type,
                  std::string_view payload) {
  const std::string frame = EncodeFrame(type, payload);
  return socket.SendAll(frame.data(), frame.size());
}

Result<Frame> ReadFrame(const Socket& socket, double timeout_ms) {
  char header_bytes[kFrameHeaderSize];
  // Clean EOF here (Unavailable) means the peer left between frames.
  MPC_RETURN_IF_ERROR(
      socket.RecvExact(header_bytes, kFrameHeaderSize, timeout_ms));
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderSize));
  if (!header.ok()) return header.status();

  Frame frame;
  frame.type = header->type;
  frame.payload.resize(header->payload_len);
  if (header->payload_len > 0) {
    Status st = socket.RecvExact(frame.payload.data(), header->payload_len,
                                 timeout_ms);
    if (!st.ok()) {
      // EOF at the payload boundary is still a torn frame — the header
      // promised bytes that never arrived.
      if (st.code() == StatusCode::kUnavailable) {
        return Status::ParseError("stream truncated: EOF where " +
                                  std::to_string(header->payload_len) +
                                  " payload bytes were promised");
      }
      return st;
    }
  }
  MPC_RETURN_IF_ERROR(VerifyFramePayload(*header, frame.payload));
  return frame;
}

}  // namespace mpc::net

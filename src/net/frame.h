#ifndef MPC_NET_FRAME_H_
#define MPC_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/socket.h"

namespace mpc::net {

/// Wire format: every message is one frame,
///
///   magic   u32   "MPCR" (little-endian 0x5243504d)
///   version u16   kProtocolVersion
///   type    u16   message type (transport types below; applications
///                 define their own from kFirstAppFrameType up)
///   length  u32   payload byte count (<= kMaxFramePayload)
///   check   u64   FNV-1a over the payload bytes
///   payload length bytes
///
/// The magic + version + length guard makes every torn, truncated or
/// garbage frame a clean ParseError at the reader — never a crash, an
/// unbounded allocation, or a silent misparse; the checksum catches
/// payload corruption that leaves the header plausible.
inline constexpr uint32_t kFrameMagic = 0x5243504du;  // "MPCR"
/// v2: EvalRequest carries trace context (trace_id / parent_span_id /
/// query_tag) and EvalReply appends the worker's recorded spans. The
/// version check is strict both ways, so a v1 worker's Hello is
/// rejected as ParseError at the coordinator's first read (and vice
/// versa) — mixed-version fleets fail loudly at connect, not subtly
/// mid-query.
inline constexpr uint16_t kProtocolVersion = 2;
inline constexpr size_t kFrameHeaderSize = 20;
inline constexpr size_t kMaxFramePayload = size_t{1} << 30;

/// Transport-level frame types; application protocols (the site RPC
/// messages in exec/rpc_protocol.h) start at kFirstAppFrameType.
inline constexpr uint16_t kFramePing = 1;
inline constexpr uint16_t kFramePong = 2;
inline constexpr uint16_t kFirstAppFrameType = 16;

struct FrameHeader {
  uint16_t version = 0;
  uint16_t type = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

struct Frame {
  uint16_t type = 0;
  std::string payload;
};

/// FNV-1a over raw bytes — the frame checksum. Stable across platforms.
uint64_t FrameChecksum(std::string_view payload);

/// A complete frame (header + payload), ready to send.
std::string EncodeFrame(uint16_t type, std::string_view payload);

/// Decodes exactly kFrameHeaderSize header bytes. ParseError on short
/// input, wrong magic, unknown version, or an oversized length — checked
/// BEFORE anything allocates payload_len bytes.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

/// Verifies the payload against the header's checksum.
Status VerifyFramePayload(const FrameHeader& header, std::string_view payload);

/// Sends one frame.
Status WriteFrame(const Socket& socket, uint16_t type,
                  std::string_view payload);

/// Reads one frame before the deadline. Clean EOF between frames is
/// Unavailable (peer departed); EOF or reset inside a frame, bad magic,
/// bad version, oversized length, and checksum mismatch are ParseError;
/// a blown deadline is DeadlineExceeded.
Result<Frame> ReadFrame(const Socket& socket, double timeout_ms);

}  // namespace mpc::net

#endif  // MPC_NET_FRAME_H_

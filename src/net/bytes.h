#ifndef MPC_NET_BYTES_H_
#define MPC_NET_BYTES_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mpc::net {

/// Append-only little-endian encoder for wire payloads. Fixed-width
/// fields only (no varints): frames are length-prefixed anyway, and
/// fixed widths keep decode errors trivially localizable.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { PutLe(v, 2); }
  void U32(uint32_t v) { PutLe(v, 4); }
  void U64(uint64_t v) { PutLe(v, 8); }
  /// IEEE-754 bits; both ends are little-endian IEEE hosts.
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bytes(std::string_view data) { out_.append(data); }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view data) {
    U32(static_cast<uint32_t>(data.size()));
    out_.append(data);
  }

  size_t size() const { return out_.size(); }
  std::string Take() { return std::move(out_); }

 private:
  void PutLe(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

/// Bounds-checked decoder over a received payload. Every read past the
/// buffer returns ParseError naming the offset — never reads out of
/// bounds, whatever bytes a torn or hostile frame carries.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v) {
    MPC_RETURN_IF_ERROR(Need(1));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }
  Status U16(uint16_t* v) { return GetLe(v); }
  Status U32(uint32_t* v) { return GetLe(v); }
  Status U64(uint64_t* v) { return GetLe(v); }
  Status F64(double* v) {
    uint64_t bits = 0;
    MPC_RETURN_IF_ERROR(U64(&bits));
    *v = std::bit_cast<double>(bits);
    return Status::Ok();
  }
  /// Reads a u32 length prefix, then that many raw bytes. The length is
  /// validated against the remaining buffer before anything is touched.
  Status Str(std::string* out) {
    uint32_t len = 0;
    MPC_RETURN_IF_ERROR(U32(&len));
    MPC_RETURN_IF_ERROR(Need(len));
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// Decoders call this last: trailing garbage means the two ends
  /// disagree about the message layout — better a loud error than a
  /// silently half-read message.
  Status ExpectEnd() const {
    if (AtEnd()) return Status::Ok();
    return Status::ParseError("message has " + std::to_string(remaining()) +
                              " unexpected trailing bytes");
  }

 private:
  Status Need(size_t n) const {
    if (data_.size() - pos_ >= n) return Status::Ok();
    return Status::ParseError(
        "message truncated: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " + std::to_string(remaining()));
  }
  template <typename T>
  Status GetLe(T* v) {
    MPC_RETURN_IF_ERROR(Need(sizeof(T)));
    uint64_t acc = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += sizeof(T);
    *v = static_cast<T>(acc);
    return Status::Ok();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace mpc::net

#endif  // MPC_NET_BYTES_H_

#ifndef MPC_NET_SOCKET_H_
#define MPC_NET_SOCKET_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace mpc::net {

/// RAII wrapper over an AF_UNIX stream socket (the repro's stand-in for
/// the paper testbed's TCP fabric — same kernel stream semantics, no
/// port allocation headaches in tests). All blocking operations take a
/// poll()-backed deadline; timeout_ms <= 0 blocks indefinitely.
///
/// Error vocabulary (shared with the frame layer):
///   Unavailable      — peer gone: connect refused, clean EOF, EPIPE.
///   DeadlineExceeded — the deadline elapsed first.
///   ParseError       — the stream died mid-read (truncated data).
///   IoError          — anything else the kernel reports.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Binds and listens on `path`, removing any stale socket file first.
  static Result<Socket> Listen(const std::string& path);

  /// One connect attempt to a listening socket at `path`. A missing file
  /// or a refused connection (worker dead / not yet up) is Unavailable —
  /// retry/backoff policy belongs to the caller.
  static Result<Socket> Connect(const std::string& path);

  /// Accepts one connection (listener sockets only).
  Result<Socket> Accept(double timeout_ms) const;

  /// Writes all n bytes. A peer that disappeared mid-write (EPIPE,
  /// ECONNRESET) is Unavailable.
  Status SendAll(const void* data, size_t n) const;

  /// Reads exactly n bytes before the deadline. EOF before the first
  /// byte is Unavailable (the peer closed at a message boundary); EOF
  /// mid-read is ParseError (the stream was torn).
  Status RecvExact(void* buf, size_t n, double timeout_ms) const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace mpc::net

#endif  // MPC_NET_SOCKET_H_

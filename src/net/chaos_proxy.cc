#include "net/chaos_proxy.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

namespace mpc::net {

ChaosProxy::ChaosProxy(std::string listen_path, std::string target_path,
                       ChaosOptions options)
    : listen_path_(std::move(listen_path)),
      target_path_(std::move(target_path)),
      options_(options) {}

ChaosProxy::~ChaosProxy() { Stop(); }

void ChaosProxy::UpdateOptions(ChaosOptions options) {
  std::lock_guard<std::mutex> lock(options_mu_);
  options_ = options;
}

ChaosOptions ChaosProxy::CurrentOptions() const {
  std::lock_guard<std::mutex> lock(options_mu_);
  return options_;
}

Status ChaosProxy::Start() {
  Result<Socket> listener = Socket::Listen(listen_path_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (stopping_.exchange(true)) return;
  // Closing the listener makes the blocked Accept fail and the loop exit.
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
}

void ChaosProxy::AcceptLoop() {
  // One connection at a time: the RemoteCluster serializes per-site
  // traffic anyway, and serial handling keeps fault injection offsets
  // deterministic.
  while (!stopping_.load()) {
    Result<Socket> client = listener_.Accept(/*timeout_ms=*/250);
    if (!client.ok()) {
      if (stopping_.load()) return;
      continue;  // timeout or transient accept error: keep listening
    }
    Result<Socket> target = Socket::Connect(target_path_);
    if (!target.ok()) continue;  // worker down: drop the client
    Pump(std::move(*client), std::move(*target));
  }
}

void ChaosProxy::Pump(Socket client, Socket target) {
  // Bidirectional byte pump with fault injection on the reply direction
  // (target -> client). Runs until either side closes or a fault cuts
  // the stream.
  std::vector<char> buf(64 * 1024);
  while (!stopping_.load()) {
    struct pollfd fds[2];
    fds[0] = {client.fd(), POLLIN, 0};
    fds[1] = {target.fd(), POLLIN, 0};
    const int n = ::poll(fds, 2, 100);
    if (n < 0 && errno != EINTR) return;
    if (n <= 0) continue;

    if (fds[0].revents != 0) {
      // Request direction: transparent.
      const ssize_t got = ::recv(client.fd(), buf.data(), buf.size(), 0);
      if (got <= 0) return;
      if (!target.SendAll(buf.data(), static_cast<size_t>(got)).ok()) return;
    }
    if (fds[1].revents != 0) {
      const ssize_t got = ::recv(target.fd(), buf.data(), buf.size(), 0);
      if (got <= 0) return;
      size_t len = static_cast<size_t>(got);
      const size_t offset = reply_bytes_.load();
      const ChaosOptions opts = CurrentOptions();
      if (opts.delay_reply_ms > 0) {
        ::usleep(static_cast<useconds_t>(opts.delay_reply_ms * 1000));
      }
      if (opts.corrupt_reply_at != SIZE_MAX &&
          opts.corrupt_reply_at >= offset &&
          opts.corrupt_reply_at < offset + len) {
        buf[opts.corrupt_reply_at - offset] ^=
            static_cast<char>(opts.corrupt_mask);
      }
      bool cut = false;
      if (opts.truncate_reply_after != SIZE_MAX &&
          offset + len >= opts.truncate_reply_after) {
        // Forward only up to the cut point, then tear the stream.
        len = opts.truncate_reply_after > offset
                  ? opts.truncate_reply_after - offset
                  : 0;
        cut = true;
      }
      if (len > 0) {
        reply_bytes_.fetch_add(len);
        if (!client.SendAll(buf.data(), len).ok()) return;
      }
      if (cut) return;  // both sockets close on scope exit
    }
  }
}

}  // namespace mpc::net

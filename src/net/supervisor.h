#ifndef MPC_NET_SUPERVISOR_H_
#define MPC_NET_SUPERVISOR_H_

#include <sys/types.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/socket.h"

namespace mpc::net {

/// One worker process the supervisor owns: how to exec it and where it
/// listens.
struct WorkerSpec {
  /// argv[0] is the binary path.
  std::vector<std::string> argv;
  /// Extra argv appended only to the FIRST spawn — chaos levers like
  /// --kill-after-queries. A respawn after the injected crash comes back
  /// without them, so the fault fires exactly once and recovery is real.
  std::vector<std::string> chaos_argv;
  std::string socket_path;
};

struct SupervisorOptions {
  /// How long to wait for a freshly spawned worker's socket to accept.
  double spawn_wait_ms = 10000;
  /// Monitor thread period: how often children are reaped and pinged.
  double heartbeat_interval_ms = 50;
  /// Exponential backoff base before restart r of a worker waits
  /// restart_backoff_ms * 2^r.
  double restart_backoff_ms = 100;
  /// Restarts allowed per worker over the supervisor's lifetime; a
  /// worker that dies more often stays down (crash-loop brake). The
  /// first spawn is not a restart.
  int max_restarts = 3;
  /// Grace period between SIGTERM and SIGKILL at shutdown.
  double drain_grace_ms = 5000;
};

/// Spawns and babysits the `mpc site` worker fleet: fork/exec per spec,
/// a monitor thread that reaps dead children (waitpid heartbeat) and
/// respawns them with exponential backoff under a bounded restart
/// budget, and a graceful SIGTERM-first shutdown. Transport only — it
/// never speaks the RPC protocol beyond what Connect() hands back; the
/// RemoteCluster owns handshakes and re-synchronization after a restart.
class SiteSupervisor {
 public:
  SiteSupervisor(std::vector<WorkerSpec> specs, SupervisorOptions options);
  ~SiteSupervisor();

  SiteSupervisor(const SiteSupervisor&) = delete;
  SiteSupervisor& operator=(const SiteSupervisor&) = delete;

  /// Spawns every worker and waits until each accepts connections.
  Status StartAll();

  /// Connects to worker i. If the process is dead and restart budget
  /// remains, waits for the monitor's backoff-scheduled respawn (bounded
  /// by spawn_wait_ms); a worker past its budget is Unavailable
  /// immediately. Each call returns a fresh connection.
  Result<Socket> Connect(uint32_t worker);

  /// True while the process exists (the monitor has not reaped it).
  bool IsAlive(uint32_t worker) const;

  /// Blocks until worker i accepts connections again (restart path) or
  /// the deadline passes. Unavailable once the restart budget is spent.
  Status WaitUntilUp(uint32_t worker, double timeout_ms);

  /// SIGTERM everyone (graceful drain), escalate to SIGKILL after the
  /// grace period, reap, and stop the monitor. Idempotent.
  void StopAll();

  /// SIGKILL one worker — the chaos lever for fault tests. The monitor
  /// then restarts it (budget permitting) like any other death.
  Status Kill(uint32_t worker);

  int restarts(uint32_t worker) const;
  pid_t pid(uint32_t worker) const;
  size_t num_workers() const { return workers_.size(); }

 private:
  struct Worker {
    WorkerSpec spec;
    pid_t pid = -1;
    bool alive = false;
    int restarts = 0;
    /// Monotonic deadline (Timer-epoch ms) before which the monitor
    /// must not respawn; 0 = may respawn immediately.
    double respawn_after_ms = 0.0;
    bool gave_up = false;  // restart budget exhausted
  };

  Status Spawn(Worker* worker);
  void MonitorLoop();
  /// Reaps exited children and schedules/performs respawns. Returns
  /// with lock held throughout.
  void ReapAndRespawnLocked();
  double NowMillis() const;

  SupervisorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable state_changed_;
  std::vector<Worker> workers_;
  std::thread monitor_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace mpc::net

#endif  // MPC_NET_SUPERVISOR_H_

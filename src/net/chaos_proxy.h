#ifndef MPC_NET_CHAOS_PROXY_H_
#define MPC_NET_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/socket.h"

namespace mpc::net {

/// What the proxy does to the worker->coordinator byte stream. The
/// coordinator-bound direction is the interesting one: that is where a
/// torn reply frame must surface as a clean ParseError.
struct ChaosOptions {
  /// After forwarding this many reply bytes, close both directions —
  /// a mid-frame cut (torn frame) when it lands inside a frame.
  /// SIZE_MAX = never.
  size_t truncate_reply_after = SIZE_MAX;
  /// XOR this mask into the reply byte at this absolute offset
  /// (SIZE_MAX = never): checksum-mismatch injection.
  size_t corrupt_reply_at = SIZE_MAX;
  uint8_t corrupt_mask = 0xff;
  /// Sleep this long before forwarding each reply chunk (delay fault;
  /// drives DeadlineExceeded when it exceeds the caller's timeout).
  double delay_reply_ms = 0.0;
};

/// A man-in-the-middle shim between the coordinator and one worker
/// socket: listens on `listen_path`, forwards every accepted connection
/// to `target_path`, and injects the configured faults into the reply
/// stream. Requests pass through untouched, so the worker stays healthy
/// — exactly the scenario where transport-level integrity checking (not
/// process supervision) has to catch the damage.
class ChaosProxy {
 public:
  ChaosProxy(std::string listen_path, std::string target_path,
             ChaosOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds and starts the accept loop.
  Status Start();
  void Stop();

  /// Total reply bytes forwarded (before any truncation point).
  size_t reply_bytes_forwarded() const { return reply_bytes_.load(); }

  /// Swaps the fault configuration while the proxy runs. Tests use this
  /// to let startup handshakes through clean and then arm a fault at an
  /// absolute reply offset just past reply_bytes_forwarded().
  void UpdateOptions(ChaosOptions options);

 private:
  void AcceptLoop();
  void Pump(Socket client, Socket target);
  ChaosOptions CurrentOptions() const;

  std::string listen_path_;
  std::string target_path_;
  mutable std::mutex options_mu_;
  ChaosOptions options_;
  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> reply_bytes_{0};
};

}  // namespace mpc::net

#endif  // MPC_NET_CHAOS_PROXY_H_

#ifndef MPC_STORE_TRIPLE_SOURCE_H_
#define MPC_STORE_TRIPLE_SOURCE_H_

#include <cstddef>

#include "common/function_ref.h"
#include "rdf/types.h"

namespace mpc::store {

/// Per-triple scan callback: return false to stop the scan early.
/// FunctionRef, not std::function — Scan sits in the matcher's innermost
/// recursion and must not allocate per call.
using ScanFn = FunctionRef<bool(const rdf::Triple&)>;

/// Abstract read surface of one site's triple set. Two backends
/// implement it: the in-memory `TripleStore` (four uncompressed sort
/// copies) and the mmap'ed `storage::SegmentStore` (compressed on-disk
/// segments, zone-map-pruned scans), plus `storage::DeltaOverlaySource`
/// composing a base with the dynamic maintainer's add/tombstone sets.
/// BgpMatcher, Cluster, the site workers and serve::QueryService all run
/// against this interface, so backends are interchangeable per site.
///
/// Scan emission order is part of the contract — the distributed
/// executor's bit-identity across backends depends on it. For each
/// bound/unbound combination of (s, p, o), matches are emitted sorted
/// by:
///
///   p,s bound      → object ascending            (PSO run)
///   p,o bound      → subject ascending           (POS run)
///   p bound        → (subject, object) ascending (PSO run)
///   s,o bound      → property ascending
///   s bound        → (property, object) ascending
///   o bound        → (subject, property) ascending
///   none bound     → (property, subject, object) ascending
///   s,p,o bound    → the single match, if present
///
/// EstimateCardinality must be EXACT for every combination (both
/// existing backends are): the matcher orders patterns greedily by these
/// numbers, so differing estimates would reorder the search and change
/// row order even with identical triple sets.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// Number of distinct triples held.
  virtual size_t num_triples() const = 0;

  /// Number of triples with property p (0 if absent here).
  virtual size_t PropertyCount(rdf::PropertyId p) const = 0;

  /// Enumerates triples matching the pattern in the contract order
  /// above; kInvalidVertex / kInvalidProperty mean "unbound". Returns
  /// false iff the callback stopped the scan early.
  virtual bool Scan(rdf::VertexId s, rdf::PropertyId p, rdf::VertexId o,
                    ScanFn fn) const = 0;

  /// Exact number of matches for the pattern (see class comment).
  virtual size_t EstimateCardinality(rdf::VertexId s, rdf::PropertyId p,
                                     rdf::VertexId o) const = 0;

  /// Approximate resident footprint in bytes: heap for in-memory
  /// backends, mapped file bytes for segment-backed ones.
  virtual size_t MemoryUsage() const = 0;

 protected:
  TripleSource() = default;
  TripleSource(const TripleSource&) = default;
  TripleSource& operator=(const TripleSource&) = default;
};

}  // namespace mpc::store

#endif  // MPC_STORE_TRIPLE_SOURCE_H_

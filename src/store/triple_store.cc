#include "store/triple_store.h"

#include <algorithm>

namespace mpc::store {

namespace {

using rdf::kInvalidProperty;
using rdf::kInvalidVertex;
using rdf::PropertyId;
using rdf::Triple;
using rdf::VertexId;

struct PsoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.property != b.property) return a.property < b.property;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.object < b.object;
  }
};
struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.property != b.property) return a.property < b.property;
    if (a.object != b.object) return a.object < b.object;
    return a.subject < b.subject;
  }
};
struct SpoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.property != b.property) return a.property < b.property;
    return a.object < b.object;
  }
};
struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.object != b.object) return a.object < b.object;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.property < b.property;
  }
};

template <typename Less>
std::span<const Triple> EqualRange(const std::vector<Triple>& index,
                                   const Triple& lo_key,
                                   const Triple& hi_key, Less less) {
  auto lo = std::lower_bound(index.begin(), index.end(), lo_key, less);
  auto hi = std::upper_bound(lo, index.end(), hi_key, less);
  return std::span<const Triple>(&*index.begin() + (lo - index.begin()),
                                 static_cast<size_t>(hi - lo));
}

}  // namespace

TripleStore::TripleStore(std::vector<rdf::Triple> triples) {
  std::sort(triples.begin(), triples.end(), PsoLess());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  pso_ = triples;  // copy
  pos_ = triples;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  spo_ = triples;
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  osp_ = std::move(triples);
  std::sort(osp_.begin(), osp_.end(), OspLess());
}

std::span<const Triple> TripleStore::PsoRange(PropertyId p) const {
  if (pso_.empty()) return {};
  return EqualRange(pso_, Triple(0, p, 0),
                    Triple(kInvalidVertex, p, kInvalidVertex), PsoLess());
}

std::span<const Triple> TripleStore::PsoRange(PropertyId p,
                                              VertexId s) const {
  if (pso_.empty()) return {};
  return EqualRange(pso_, Triple(s, p, 0), Triple(s, p, kInvalidVertex),
                    PsoLess());
}

std::span<const Triple> TripleStore::PosRange(PropertyId p,
                                              VertexId o) const {
  if (pos_.empty()) return {};
  return EqualRange(pos_, Triple(0, p, o), Triple(kInvalidVertex, p, o),
                    PosLess());
}

std::span<const Triple> TripleStore::SpoRange(VertexId s) const {
  if (spo_.empty()) return {};
  return EqualRange(spo_, Triple(s, 0, 0),
                    Triple(s, kInvalidProperty, kInvalidVertex), SpoLess());
}

std::span<const Triple> TripleStore::OspRange(VertexId o) const {
  if (osp_.empty()) return {};
  return EqualRange(osp_, Triple(0, 0, o),
                    Triple(kInvalidVertex, kInvalidProperty, o), OspLess());
}

std::span<const Triple> TripleStore::OspRange(VertexId o,
                                              VertexId s) const {
  if (osp_.empty()) return {};
  return EqualRange(osp_, Triple(s, 0, o), Triple(s, kInvalidProperty, o),
                    OspLess());
}

size_t TripleStore::PropertyCount(PropertyId p) const {
  return PsoRange(p).size();
}

bool TripleStore::Scan(VertexId s, PropertyId p, VertexId o,
                       ScanFn fn) const {
  const bool bs = s != kInvalidVertex;
  const bool bp = p != kInvalidProperty;
  const bool bo = o != kInvalidVertex;

  auto emit_filtered = [&](std::span<const Triple> range) {
    for (const Triple& t : range) {
      if (bs && t.subject != s) continue;
      if (bo && t.object != o) continue;
      if (bp && t.property != p) continue;
      if (!fn(t)) return false;
    }
    return true;
  };

  if (bp && bs) return emit_filtered(PsoRange(p, s));  // filters o
  if (bp && bo) return emit_filtered(PosRange(p, o));
  if (bp) return emit_filtered(PsoRange(p));
  if (bs && bo) return emit_filtered(OspRange(o, s));  // filters p
  if (bs) return emit_filtered(SpoRange(s));  // filters p, o
  if (bo) return emit_filtered(OspRange(o));  // filters p
  return emit_filtered(std::span<const Triple>(pso_));
}

size_t TripleStore::EstimateCardinality(VertexId s, PropertyId p,
                                        VertexId o) const {
  const bool bs = s != kInvalidVertex;
  const bool bp = p != kInvalidProperty;
  const bool bo = o != kInvalidVertex;
  if (bp && bs && bo) {
    // Point lookup: 0 or 1.
    auto range = PsoRange(p, s);
    for (const Triple& t : range) {
      if (t.object == o) return 1;
    }
    return 0;
  }
  if (bp && bs) return PsoRange(p, s).size();
  if (bp && bo) return PosRange(p, o).size();
  if (bp) return PsoRange(p).size();
  if (bs && bo) return OspRange(o, s).size();
  if (bs) return SpoRange(s).size();
  if (bo) return OspRange(o).size();
  return num_triples();
}

size_t TripleStore::MemoryUsage() const {
  return (pso_.capacity() + pos_.capacity() + spo_.capacity() +
          osp_.capacity()) *
         sizeof(Triple);
}

}  // namespace mpc::store

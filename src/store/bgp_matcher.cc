#include "store/bgp_matcher.h"

#include <algorithm>
#include <cassert>

namespace mpc::store {

namespace {

using rdf::kInvalidProperty;
using rdf::kInvalidVertex;

constexpr uint32_t kUnbound = UINT32_MAX;

}  // namespace

ResolvedQuery ResolveQuery(const sparql::QueryGraph& query,
                           const rdf::RdfGraph& graph) {
  ResolvedQuery resolved;
  resolved.num_vars = query.num_variables();
  resolved.var_names = query.variables();
  resolved.projection = query.projection();
  resolved.patterns.reserve(query.num_patterns());

  for (const sparql::TriplePattern& p : query.patterns()) {
    ResolvedPattern r;
    if (p.subject.is_variable()) {
      r.s_is_var = true;
      r.s = p.subject.var_id;
    } else {
      r.s = graph.vertex_dict().Lookup(p.subject.text);
      if (r.s == kInvalidVertex) r.impossible = true;
    }
    if (p.predicate.is_variable()) {
      r.p_is_var = true;
      r.p = p.predicate.var_id;
    } else {
      r.p = graph.property_dict().Lookup(p.predicate.text);
      if (r.p == kInvalidVertex) r.impossible = true;
    }
    if (p.object.is_variable()) {
      r.o_is_var = true;
      r.o = p.object.var_id;
    } else {
      r.o = graph.vertex_dict().Lookup(p.object.text);
      if (r.o == kInvalidVertex) r.impossible = true;
    }
    resolved.patterns.push_back(r);
  }
  return resolved;
}

size_t BindingTable::ColumnOf(uint32_t var_id) const {
  for (size_t i = 0; i < var_ids.size(); ++i) {
    if (var_ids[i] == var_id) return i;
  }
  return SIZE_MAX;
}

void BindingTable::Deduplicate() {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

void BindingTable::SortColumnsAscending() {
  const size_t n = var_ids.size();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(),
            [&](size_t a, size_t b) { return var_ids[a] < var_ids[b]; });
  bool sorted = true;
  for (size_t i = 0; i < n; ++i) sorted &= (perm[i] == i);
  if (sorted) return;
  std::vector<uint32_t> new_vars(n);
  for (size_t i = 0; i < n; ++i) new_vars[i] = var_ids[perm[i]];
  var_ids = std::move(new_vars);
  for (auto& row : rows) {
    std::vector<uint32_t> new_row(n);
    for (size_t i = 0; i < n; ++i) new_row[i] = row[perm[i]];
    row = std::move(new_row);
  }
}

BindingTable ApplyProjection(const BindingTable& table,
                             const std::vector<uint32_t>& projection) {
  if (projection.empty()) return table;
  BindingTable out;
  std::vector<size_t> columns;
  for (uint32_t var : projection) {
    size_t col = table.ColumnOf(var);
    if (col == SIZE_MAX) continue;
    out.var_ids.push_back(var);
    columns.push_back(col);
  }
  out.rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::vector<uint32_t> projected(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      projected[i] = row[columns[i]];
    }
    out.rows.push_back(std::move(projected));
  }
  out.Deduplicate();
  return out;
}

namespace {

/// Recursive backtracking engine. Bindings live in one array indexed by
/// var id; kUnbound marks free variables.
class SearchState {
 public:
  SearchState(const TripleSource& store, const ResolvedQuery& query,
              std::vector<size_t> order, std::vector<uint32_t> columns,
              size_t max_results)
      : store_(store),
        query_(query),
        order_(std::move(order)),
        columns_(std::move(columns)),
        max_results_(max_results),
        bindings_(query.num_vars, kUnbound) {
    table_.var_ids = columns_;
  }

  BindingTable Run() {
    Recurse(0);
    return std::move(table_);
  }

 private:
  void Recurse(size_t depth) {
    if (table_.rows.size() >= max_results_) return;
    if (depth == order_.size()) {
      std::vector<uint32_t> row(columns_.size());
      for (size_t i = 0; i < columns_.size(); ++i) {
        row[i] = bindings_[columns_[i]];
      }
      table_.rows.push_back(std::move(row));
      return;
    }

    const ResolvedPattern& pat = query_.patterns[order_[depth]];
    // Current lookup keys: constants, bound variables, or wildcard.
    auto key = [&](bool is_var, uint32_t value, uint32_t wildcard) {
      if (!is_var) return value;
      return bindings_[value] == kUnbound ? wildcard : bindings_[value];
    };
    const uint32_t ks = key(pat.s_is_var, pat.s, kInvalidVertex);
    const uint32_t kp = key(pat.p_is_var, pat.p, kInvalidProperty);
    const uint32_t ko = key(pat.o_is_var, pat.o, kInvalidVertex);

    store_.Scan(ks, kp, ko, [&](const rdf::Triple& t) {
      // Bind free variables; check repeated-variable consistency inside
      // the pattern (e.g. ?x p ?x must bind subject == object).
      uint32_t bound_here[3];
      int num_bound = 0;
      auto bind = [&](bool is_var, uint32_t var, uint32_t value) {
        if (!is_var) return true;
        if (bindings_[var] == kUnbound) {
          bindings_[var] = value;
          bound_here[num_bound++] = var;
          return true;
        }
        return bindings_[var] == value;
      };
      bool ok = bind(pat.s_is_var, pat.s, t.subject) &&
                bind(pat.p_is_var, pat.p, t.property) &&
                bind(pat.o_is_var, pat.o, t.object);
      if (ok) Recurse(depth + 1);
      for (int i = 0; i < num_bound; ++i) bindings_[bound_here[i]] = kUnbound;
      return table_.rows.size() < max_results_;
    });
  }

  const TripleSource& store_;
  const ResolvedQuery& query_;
  std::vector<size_t> order_;
  std::vector<uint32_t> columns_;
  size_t max_results_;
  std::vector<uint32_t> bindings_;
  BindingTable table_;
};

/// Greedy pattern ordering: repeatedly choose the cheapest pattern,
/// strongly preferring patterns that share a variable with those already
/// placed (so the search stays join-connected and each step is a lookup,
/// not a cross product).
std::vector<size_t> OrderPatterns(const TripleSource& store,
                                  const ResolvedQuery& query,
                                  std::span<const size_t> pattern_indices) {
  std::vector<size_t> remaining(pattern_indices.begin(),
                                pattern_indices.end());
  std::vector<size_t> order;
  std::vector<bool> var_bound(query.num_vars, false);

  auto static_cost = [&](const ResolvedPattern& p) -> size_t {
    // Cardinality estimate with constants and already-bound vars treated
    // as bound (value unknown for vars, so use the constant-only
    // estimate divided by a nominal factor per bound var).
    uint32_t s = (!p.s_is_var) ? p.s : kInvalidVertex;
    uint32_t pp = (!p.p_is_var) ? p.p : kInvalidProperty;
    uint32_t o = (!p.o_is_var) ? p.o : kInvalidVertex;
    size_t est = store.EstimateCardinality(s, pp, o);
    auto shrink = [&](bool is_var, uint32_t var) {
      if (is_var && var_bound[var]) est = est / 8 + 1;
    };
    shrink(p.s_is_var, p.s);
    shrink(p.p_is_var, p.p);
    shrink(p.o_is_var, p.o);
    return est;
  };
  auto connected = [&](const ResolvedPattern& p) {
    return (p.s_is_var && var_bound[p.s]) ||
           (p.p_is_var && var_bound[p.p]) ||
           (p.o_is_var && var_bound[p.o]);
  };

  while (!remaining.empty()) {
    size_t best_pos = 0;
    size_t best_cost = SIZE_MAX;
    bool best_connected = false;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const ResolvedPattern& p = query.patterns[remaining[i]];
      bool conn = order.empty() || connected(p);
      size_t cost = static_cost(p);
      // Connected patterns always beat disconnected ones.
      if (std::make_tuple(!conn, cost) <
          std::make_tuple(!best_connected, best_cost)) {
        best_pos = i;
        best_cost = cost;
        best_connected = conn;
      }
    }
    size_t chosen = remaining[best_pos];
    remaining.erase(remaining.begin() + best_pos);
    order.push_back(chosen);
    const ResolvedPattern& p = query.patterns[chosen];
    if (p.s_is_var) var_bound[p.s] = true;
    if (p.p_is_var) var_bound[p.p] = true;
    if (p.o_is_var) var_bound[p.o] = true;
  }
  return order;
}

}  // namespace

BindingTable BgpMatcher::Evaluate(const TripleSource& store,
                                  const ResolvedQuery& query,
                                  std::span<const size_t> pattern_indices,
                                  const Options& options) {
  // Columns: the variables used by the selected patterns, ascending.
  std::vector<uint32_t> columns;
  bool impossible = false;
  for (size_t idx : pattern_indices) {
    const ResolvedPattern& p = query.patterns[idx];
    if (p.impossible) impossible = true;
    if (p.s_is_var) columns.push_back(p.s);
    if (p.p_is_var) columns.push_back(p.p);
    if (p.o_is_var) columns.push_back(p.o);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());

  if (impossible || pattern_indices.empty()) {
    BindingTable empty;
    empty.var_ids = std::move(columns);
    return empty;
  }

  std::vector<size_t> order = OrderPatterns(store, query, pattern_indices);
  SearchState state(store, query, std::move(order), std::move(columns),
                    options.max_results);
  return state.Run();
}

BindingTable BgpMatcher::EvaluateAll(const TripleSource& store,
                                     const ResolvedQuery& query,
                                     const Options& options) {
  std::vector<size_t> all(query.patterns.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return Evaluate(store, query, all, options);
}

}  // namespace mpc::store

#ifndef MPC_STORE_BGP_MATCHER_H_
#define MPC_STORE_BGP_MATCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"
#include "store/triple_source.h"

namespace mpc::store {

/// A triple pattern with its terms resolved against the global
/// dictionaries: constants become ids, variables keep their per-query
/// var ids.
struct ResolvedPattern {
  bool s_is_var = false;
  bool p_is_var = false;
  bool o_is_var = false;
  /// Variable id when *_is_var, otherwise the dictionary-encoded
  /// constant (vertex id for s/o, property id for p).
  uint32_t s = 0;
  uint32_t p = 0;
  uint32_t o = 0;
  /// True when a constant term does not exist in the dictionary — the
  /// pattern (and so the query) can have no matches anywhere.
  bool impossible = false;
};

/// A query resolved against one RDF graph's dictionaries. Resolution is
/// done once at the coordinator; every site shares the global encoding.
struct ResolvedQuery {
  std::vector<ResolvedPattern> patterns;
  size_t num_vars = 0;
  std::vector<std::string> var_names;
  /// Projection var ids; empty = all variables.
  std::vector<uint32_t> projection;
};

/// Resolves `query` against `graph`'s dictionaries.
ResolvedQuery ResolveQuery(const sparql::QueryGraph& query,
                           const rdf::RdfGraph& graph);

/// A set of solution mappings: one column per variable in `var_ids`
/// order, one row per match. Unbound never occurs (BGP binds every
/// variable of its patterns).
struct BindingTable {
  std::vector<uint32_t> var_ids;
  std::vector<std::vector<uint32_t>> rows;

  size_t num_rows() const { return rows.size(); }
  /// Column position of `var_id`, or SIZE_MAX.
  size_t ColumnOf(uint32_t var_id) const;
  /// Sorts rows and removes duplicates (set semantics for the
  /// cross-partition union of Definition 3.7).
  void Deduplicate();
  /// Reorders columns ascending by var id (joins append columns in join
  /// order; this restores the canonical layout the matcher produces).
  void SortColumnsAscending();
  /// Rough wire size in bytes if shipped to the coordinator.
  size_t ByteSize() const {
    return rows.size() * var_ids.size() * sizeof(uint32_t);
  }
};

/// Projects `table` onto `projection` (var ids, output column order) and
/// deduplicates, implementing SELECT's projection with set semantics.
/// An empty projection returns the table unchanged (SELECT *). Var ids
/// missing from the table are ignored.
BindingTable ApplyProjection(const BindingTable& table,
                             const std::vector<uint32_t>& projection);

/// Backtracking subgraph-homomorphism matcher over one TripleSource
/// (in-memory TripleStore or mmap'ed SegmentStore alike) — the "local
/// evaluation" engine of Section V-B2. Pattern order is chosen
/// greedily by estimated cardinality with join-connectivity preference
/// (bound-first), the standard strategy in RDF engines.
struct MatcherOptions {
  /// Stop after this many rows (safety valve; SIZE_MAX = exhaustive).
  size_t max_results = SIZE_MAX;
};

class BgpMatcher {
 public:
  using Options = MatcherOptions;

  /// Evaluates the sub-BGP formed by `pattern_indices` (indices into
  /// query.patterns). The result table's columns are exactly the
  /// variables used by those patterns, ascending by var id.
  static BindingTable Evaluate(const TripleSource& store,
                               const ResolvedQuery& query,
                               std::span<const size_t> pattern_indices,
                               const Options& options = Options());

  /// Evaluates the whole query.
  static BindingTable EvaluateAll(const TripleSource& store,
                                  const ResolvedQuery& query,
                                  const Options& options = Options());
};

}  // namespace mpc::store

#endif  // MPC_STORE_BGP_MATCHER_H_

#ifndef MPC_STORE_TRIPLE_STORE_H_
#define MPC_STORE_TRIPLE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/types.h"
#include "store/triple_source.h"

namespace mpc::store {

/// The per-site RDF engine standing in for gStore [40]: an in-memory
/// triple store over globally dictionary-encoded ids, with four
/// sort-order indexes (PSO, POS, SPO, OSP) answering every bound/unbound
/// combination of a triple pattern with binary search.
///
/// One instance holds one partition F_i = E_i ∪ E_i^c (internal edges
/// plus crossing-edge replicas) in the vertex-disjoint setting, or the
/// property shards of a VP site.
///
/// This is the uncompressed in-memory TripleSource backend; see
/// storage::SegmentStore for the compressed mmap'ed one.
class TripleStore final : public TripleSource {
 public:
  TripleStore() = default;

  /// Builds all four indexes from a partition's triples (duplicates are
  /// removed; replicas of the same edge appear once per site).
  explicit TripleStore(std::vector<rdf::Triple> triples);

  size_t num_triples() const override { return pso_.size(); }

  /// Number of triples with property p (0 if absent here).
  size_t PropertyCount(rdf::PropertyId p) const override;

  /// Enumerates triples matching the pattern; kInvalidVertex /
  /// kInvalidProperty mean "unbound". Returns false from the callback to
  /// stop early; Scan returns false iff stopped early. Emission order
  /// follows the TripleSource contract.
  bool Scan(rdf::VertexId s, rdf::PropertyId p, rdf::VertexId o,
            ScanFn fn) const override;

  /// Estimated number of matches for the pattern, used by the matcher's
  /// pattern ordering. Exact for every bound/unbound combination (point
  /// lookups, (p), (p,s), (p,o), (s), (o) and (s,o) prefixes);
  /// num_triples() for fully unbound.
  size_t EstimateCardinality(rdf::VertexId s, rdf::PropertyId p,
                             rdf::VertexId o) const override;

  /// Approximate heap footprint in bytes (for the loading report).
  /// Counts all FOUR sort copies — PSO, POS, SPO and OSP.
  size_t MemoryUsage() const override;

 private:
  std::span<const rdf::Triple> PsoRange(rdf::PropertyId p) const;
  std::span<const rdf::Triple> PsoRange(rdf::PropertyId p,
                                        rdf::VertexId s) const;
  std::span<const rdf::Triple> PosRange(rdf::PropertyId p,
                                        rdf::VertexId o) const;
  std::span<const rdf::Triple> SpoRange(rdf::VertexId s) const;
  std::span<const rdf::Triple> OspRange(rdf::VertexId o) const;
  std::span<const rdf::Triple> OspRange(rdf::VertexId o,
                                        rdf::VertexId s) const;

  // Four copies of the triple set in different sort orders.
  std::vector<rdf::Triple> pso_;  // (property, subject, object)
  std::vector<rdf::Triple> pos_;  // (property, object, subject)
  std::vector<rdf::Triple> spo_;  // (subject, property, object)
  std::vector<rdf::Triple> osp_;  // (object, subject, property)
};

}  // namespace mpc::store

#endif  // MPC_STORE_TRIPLE_STORE_H_

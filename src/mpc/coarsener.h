#ifndef MPC_MPC_COARSENER_H_
#define MPC_MPC_COARSENER_H_

#include <cstdint>
#include <vector>

#include "metis/csr_graph.h"
#include "rdf/graph.h"

namespace mpc::core {

/// The coarsened graph G_c of Section IV-B: every WCC of the
/// internal-property-induced subgraph G[L_in] collapses into one
/// supervertex (weight = number of original vertices, so the balance
/// constraint carries over), and only non-internal-property edges remain,
/// combined into weighted supervertex edges.
struct CoarsenedGraph {
  metis::CsrGraph graph;
  /// vertex_to_super[v]: the supervertex holding original vertex v.
  std::vector<uint32_t> vertex_to_super;
  size_t num_supervertices = 0;
};

/// Coarsens `graph` by the WCCs of G[L_in], where internal_mask[p] marks
/// p ∈ L_in. Theorem 2 guarantees the induced partitioning keeps every
/// internal-property edge internal: the supervertex is atomic.
CoarsenedGraph CoarsenByInternalProperties(
    const rdf::RdfGraph& graph, const std::vector<bool>& internal_mask);

}  // namespace mpc::core

#endif  // MPC_MPC_COARSENER_H_

#ifndef MPC_MPC_MPC_PARTITIONER_H_
#define MPC_MPC_MPC_PARTITIONER_H_

#include <memory>
#include <string>

#include "mpc/selector.h"
#include "mpc/weighted_selector.h"
#include "partition/partitioner.h"

namespace mpc::core {

/// Which internal-property selection algorithm MPC runs.
enum class SelectionStrategy {
  /// Algorithm 1 (forward greedy with DSF optimization).
  kGreedy,
  /// Section IV-E backward-removal heuristic for property-rich graphs.
  kBackward,
  /// Branch-and-bound optimum (the paper's MPC-Exact).
  kExact,
  /// Workload-weighted greedy (the Section II extension): maximizes the
  /// total query-log weight of internal properties. Requires
  /// MpcOptions::property_weights.
  kWeighted,
  /// Greedy below a property-count threshold, backward above it.
  kAuto,
};

struct MpcOptions {
  /// k (partition count), epsilon (imbalance tolerance of Definition
  /// 4.1), seed and num_threads — the knobs every partitioner shares.
  partition::PartitionerOptions base;
  SelectionStrategy strategy = SelectionStrategy::kAuto;
  /// Property-count threshold for kAuto.
  size_t auto_threshold = 512;
  int backward_candidates = 16;
  size_t exact_node_budget = 4'000'000;
  /// kWeighted only: per-property workload weights (see
  /// ComputeWorkloadPropertyWeights); indices follow the graph's
  /// property dictionary.
  std::vector<double> property_weights;
};

/// MPC-specific diagnostics on top of the common per-stage timings
/// ("selection", "coarsening", "metis", "materialize"). Pass one of
/// these as the RunStats* argument of Partition() to additionally
/// receive the selection result and the supervertex count; the base
/// pointer is dynamic_cast down, so a plain partition::RunStats still
/// collects the stage timings.
struct MpcRunStats : partition::RunStats {
  SelectionResult selection;
  size_t num_supervertices = 0;
};

/// The paper's contribution (Section IV): Minimum Property-Cut
/// partitioning. Pipeline:
///   1. select internal properties L_in maximizing |L_in| under
///      Cost(L_in) <= (1+eps)|V|/k        (Algorithm 1 / variants);
///   2. coarsen G by the WCCs of G[L_in] into supervertex graph G_c;
///   3. run the multilevel min edge-cut partitioner on G_c;
///   4. uncoarsen: each original vertex inherits its supervertex's
///      partition.
/// No internal-property edge can cross partitions (Theorem 2), so
/// |L_cross| <= |L| - |L_in|.
class MpcPartitioner : public partition::Partitioner {
 public:
  explicit MpcPartitioner(MpcOptions options) : options_(options) {}

  std::string name() const override {
    return options_.strategy == SelectionStrategy::kExact ? "MPC-Exact"
                                                          : "MPC";
  }

  const MpcOptions& options() const { return options_; }

 protected:
  partition::Partitioning PartitionImpl(
      const rdf::RdfGraph& graph,
      partition::RunStats* stats) const override;

 private:
  std::unique_ptr<InternalPropertySelector> MakeSelector() const;

  MpcOptions options_;
};

}  // namespace mpc::core

#endif  // MPC_MPC_MPC_PARTITIONER_H_

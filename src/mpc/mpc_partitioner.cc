#include "mpc/mpc_partitioner.h"

#include "common/timer.h"
#include "metis/partitioner.h"
#include "mpc/coarsener.h"

namespace mpc::core {

std::unique_ptr<InternalPropertySelector> MpcPartitioner::MakeSelector()
    const {
  SelectorOptions selector_options;
  selector_options.k = options_.k;
  selector_options.epsilon = options_.epsilon;
  selector_options.backward_candidates = options_.backward_candidates;
  selector_options.exact_node_budget = options_.exact_node_budget;
  switch (options_.strategy) {
    case SelectionStrategy::kGreedy:
      return std::make_unique<GreedySelector>(selector_options);
    case SelectionStrategy::kBackward:
      return std::make_unique<BackwardSelector>(selector_options);
    case SelectionStrategy::kExact:
      return std::make_unique<ExactSelector>(selector_options);
    case SelectionStrategy::kWeighted:
      return std::make_unique<WeightedGreedySelector>(
          selector_options, options_.property_weights);
    case SelectionStrategy::kAuto:
      return std::make_unique<AutoSelector>(selector_options,
                                            options_.auto_threshold);
  }
  return std::make_unique<AutoSelector>(selector_options,
                                        options_.auto_threshold);
}

partition::Partitioning MpcPartitioner::Partition(
    const rdf::RdfGraph& graph) const {
  MpcRunStats stats;
  return PartitionWithStats(graph, &stats);
}

partition::Partitioning MpcPartitioner::PartitionWithStats(
    const rdf::RdfGraph& graph, MpcRunStats* stats) const {
  Timer timer;
  std::unique_ptr<InternalPropertySelector> selector = MakeSelector();
  stats->selection = selector->Select(graph);
  stats->selection_millis = timer.ElapsedMillis();

  timer.Reset();
  CoarsenedGraph coarse =
      CoarsenByInternalProperties(graph, stats->selection.internal);
  stats->num_supervertices = coarse.num_supervertices;
  stats->coarsening_millis = timer.ElapsedMillis();

  timer.Reset();
  metis::MlpOptions mlp_options;
  mlp_options.k = options_.k;
  mlp_options.epsilon = options_.epsilon;
  mlp_options.seed = options_.seed;
  metis::MultilevelPartitioner mlp(mlp_options);
  std::vector<uint32_t> super_part = mlp.Partition(coarse.graph);
  stats->metis_millis = timer.ElapsedMillis();

  timer.Reset();
  partition::VertexAssignment assignment;
  assignment.k = options_.k;
  assignment.part.resize(graph.num_vertices());
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    assignment.part[v] = super_part[coarse.vertex_to_super[v]];
  }
  partition::Partitioning result =
      partition::Partitioning::MaterializeVertexDisjoint(
          graph, std::move(assignment));
  stats->materialize_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace mpc::core

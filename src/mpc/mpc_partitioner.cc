#include "mpc/mpc_partitioner.h"

#include "common/thread_pool.h"
#include "common/timer.h"
#include "metis/partitioner.h"
#include "mpc/coarsener.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::core {

std::unique_ptr<InternalPropertySelector> MpcPartitioner::MakeSelector()
    const {
  SelectorOptions selector_options;
  selector_options.base = options_.base;
  selector_options.backward_candidates = options_.backward_candidates;
  selector_options.exact_node_budget = options_.exact_node_budget;
  switch (options_.strategy) {
    case SelectionStrategy::kGreedy:
      return std::make_unique<GreedySelector>(selector_options);
    case SelectionStrategy::kBackward:
      return std::make_unique<BackwardSelector>(selector_options);
    case SelectionStrategy::kExact:
      return std::make_unique<ExactSelector>(selector_options);
    case SelectionStrategy::kWeighted:
      return std::make_unique<WeightedGreedySelector>(
          selector_options, options_.property_weights);
    case SelectionStrategy::kAuto:
      return std::make_unique<AutoSelector>(selector_options,
                                            options_.auto_threshold);
  }
  return std::make_unique<AutoSelector>(selector_options,
                                        options_.auto_threshold);
}

partition::Partitioning MpcPartitioner::PartitionImpl(
    const rdf::RdfGraph& graph, partition::RunStats* stats) const {
  const int threads = ResolveNumThreads(options_.base.num_threads);
  auto* mpc_stats = dynamic_cast<MpcRunStats*>(stats);

  Timer timer;
  SelectionResult selection;
  {
    MPC_TRACE_SPAN("mpc.stage.select");
    std::unique_ptr<InternalPropertySelector> selector = MakeSelector();
    selection = selector->Select(graph);
  }
  const double selection_millis = timer.ElapsedMillis();

  timer.Reset();
  CoarsenedGraph coarse;
  {
    obs::TraceSpan span("mpc.stage.coarsen");
    coarse = CoarsenByInternalProperties(graph, selection.internal);
    span.Attr("supervertices",
              static_cast<uint64_t>(coarse.num_supervertices));
  }
  const double coarsening_millis = timer.ElapsedMillis();

  timer.Reset();
  metis::MlpOptions mlp_options;
  mlp_options.k = options_.base.k;
  mlp_options.epsilon = options_.base.epsilon;
  mlp_options.seed = options_.base.seed;
  metis::MultilevelPartitioner mlp(mlp_options);
  std::vector<uint32_t> super_part;
  {
    MPC_TRACE_SPAN("mpc.stage.metis");
    super_part = mlp.Partition(coarse.graph);
  }
  const double metis_millis = timer.ElapsedMillis();

  timer.Reset();
  partition::VertexAssignment assignment;
  assignment.k = options_.base.k;
  assignment.part.resize(graph.num_vertices());
  {
    MPC_TRACE_SPAN("mpc.stage.uncoarsen");
    // Uncoarsen: every vertex writes only its own slot.
    ParallelFor(0, graph.num_vertices(), 8192, threads, [&](size_t v) {
      assignment.part[v] = super_part[coarse.vertex_to_super[v]];
    });
  }
  partition::Partitioning result;
  {
    MPC_TRACE_SPAN("mpc.stage.materialize");
    result = partition::Partitioning::MaterializeVertexDisjoint(
        graph, std::move(assignment), threads);
  }
  obs::MetricsRegistry::Default()
      .GaugeRef("mpc.coarsen.supervertices")
      .Set(static_cast<double>(coarse.num_supervertices));
  if (stats != nullptr) {
    stats->threads_used = threads;
    stats->AddStage("selection", selection_millis);
    stats->AddStage("coarsening", coarsening_millis);
    stats->AddStage("metis", metis_millis);
    stats->AddStage("materialize", timer.ElapsedMillis());
  }
  if (mpc_stats != nullptr) {
    mpc_stats->num_supervertices = coarse.num_supervertices;
    mpc_stats->selection = std::move(selection);
  }
  return result;
}

}  // namespace mpc::core

#ifndef MPC_MPC_WEIGHTED_SELECTOR_H_
#define MPC_MPC_WEIGHTED_SELECTOR_H_

#include <vector>

#include "mpc/selector.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"

namespace mpc::core {

/// Workload-aware internal property selection — the weighted MPC
/// extension Section II names as desirable but leaves out of the paper's
/// scope ("Considering the frequency of properties in query logs, a
/// weighted MPC partitioning is also desirable").
///
/// Instead of maximizing |L_in|, it maximizes the total workload weight
/// of L_in under the same Cost(L_in) <= (1+eps)|V|/k constraint, so the
/// properties real queries touch most are preferentially kept internal.
/// Greedy rule per round: among the still-feasible properties, commit
/// the one with the highest weight (ties: lower trial cost, then lower
/// id). Properties never seen in the workload default to weight
/// `default_weight` so data-only properties are still picked up once the
/// workload-relevant ones are in.
class WeightedGreedySelector : public InternalPropertySelector {
 public:
  /// `weights[p]` is property p's workload weight; may be empty
  /// (uniform, degenerating to a count-maximizing greedy with a
  /// different tie-break than Algorithm 1).
  WeightedGreedySelector(SelectorOptions options, std::vector<double> weights,
                         double default_weight = 0.0)
      : options_(options),
        weights_(std::move(weights)),
        default_weight_(default_weight) {}

  std::string name() const override { return "weighted-greedy"; }
  SelectionResult Select(const rdf::RdfGraph& graph) const override;

 private:
  SelectorOptions options_;
  std::vector<double> weights_;
  double default_weight_;
};

/// Derives property weights from a workload: weight(p) = number of
/// queries whose BGP uses property p (each query counts a property once,
/// so one property-heavy query does not dominate). Properties absent
/// from `graph` are ignored; unseen properties get weight 0.
std::vector<double> ComputeWorkloadPropertyWeights(
    const std::vector<sparql::QueryGraph>& queries,
    const rdf::RdfGraph& graph);

}  // namespace mpc::core

#endif  // MPC_MPC_WEIGHTED_SELECTOR_H_

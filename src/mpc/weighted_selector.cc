#include "mpc/weighted_selector.h"

#include <algorithm>
#include <unordered_set>

#include "common/thread_pool.h"
#include "dsf/disjoint_set_forest.h"

namespace mpc::core {

SelectionResult WeightedGreedySelector::Select(
    const rdf::RdfGraph& graph) const {
  const size_t num_props = graph.num_properties();
  const size_t cap = BalanceCap(graph, options_.base.k, options_.base.epsilon);
  const int threads = ResolveNumThreads(options_.base.num_threads);

  SelectionResult result;
  result.internal.assign(num_props, false);

  auto weight_of = [&](size_t p) {
    return p < weights_.size() ? weights_[p] : default_weight_;
  };

  // Feasibility prefilter, as in Algorithm 1 lines 2-4. Per-property
  // costs evaluate in parallel; the filter stays serial in property
  // order.
  std::vector<size_t> single_cost(num_props);
  ParallelFor(0, num_props, 1, threads, [&](size_t p) {
    single_cost[p] = dsf::MaxWccOfEdges(
        graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p)));
  });
  std::vector<rdf::PropertyId> remaining;
  for (size_t p = 0; p < num_props; ++p) {
    if (single_cost[p] > cap) {
      ++result.pruned_properties;
    } else {
      remaining.push_back(static_cast<rdf::PropertyId>(p));
    }
  }
  // Highest weight first; ties by id for determinism. Re-scanned each
  // round because feasibility changes as the forest grows.
  std::sort(remaining.begin(), remaining.end(),
            [&](rdf::PropertyId a, rdf::PropertyId b) {
              double wa = weight_of(a), wb = weight_of(b);
              if (wa != wb) return wa > wb;
              return a < b;
            });

  dsf::DisjointSetForest base(graph.num_vertices());
  bool progress = true;
  while (progress) {
    progress = false;
    // One commit per round: the first feasible property fixes the weight
    // tier (the list is sorted weight-descending), then the rest of that
    // tier competes on (trial cost, id) — the documented tie-break. Lower
    // trial cost first keeps the budget roomy for later rounds.
    size_t best = remaining.size();
    size_t best_trial = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      rdf::PropertyId p = remaining[i];
      if (best != remaining.size() &&
          weight_of(p) != weight_of(remaining[best])) {
        break;  // left the winning weight tier
      }
      ++result.iterations;
      const size_t trial =
          dsf::TrialMergeMaxComponent(base, graph.EdgesWithProperty(p));
      if (trial > cap) continue;
      // Ids ascend within a tier, so strictly-smaller trial is the only
      // way a later candidate wins.
      if (best == remaining.size() || trial < best_trial) {
        best = i;
        best_trial = trial;
      }
    }
    if (best != remaining.size()) {
      rdf::PropertyId p = remaining[best];
      base.AddEdges(graph.EdgesWithProperty(p));
      result.internal[p] = true;
      ++result.num_internal;
      remaining.erase(remaining.begin() + best);
      progress = true;
    }
  }
  result.final_cost =
      result.num_internal == 0 ? 0 : base.max_component_size();
  return result;
}

std::vector<double> ComputeWorkloadPropertyWeights(
    const std::vector<sparql::QueryGraph>& queries,
    const rdf::RdfGraph& graph) {
  std::vector<double> weights(graph.num_properties(), 0.0);
  for (const sparql::QueryGraph& query : queries) {
    std::unordered_set<rdf::PropertyId> seen;
    for (const sparql::TriplePattern& pattern : query.patterns()) {
      if (pattern.predicate.is_variable()) continue;
      rdf::PropertyId p =
          graph.property_dict().Lookup(pattern.predicate.text);
      if (p == rdf::kInvalidVertex) continue;
      if (seen.insert(p).second) weights[p] += 1.0;
    }
  }
  return weights;
}

}  // namespace mpc::core

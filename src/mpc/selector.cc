#include "mpc/selector.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_set>

#include "common/thread_pool.h"
#include "dsf/disjoint_set_forest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::core {

size_t BalanceCap(const rdf::RdfGraph& graph, uint32_t k, double epsilon) {
  if (k == 0) return graph.num_vertices();
  double cap = (1.0 + epsilon) * static_cast<double>(graph.num_vertices()) /
               static_cast<double>(k);
  return static_cast<size_t>(cap);
}

namespace {

SelectionResult MakeEmptyResult(size_t num_properties) {
  SelectionResult result;
  result.internal.assign(num_properties, false);
  return result;
}

/// One registry update per Select() call (the registry lookup takes a
/// mutex, so hot loops accumulate locally and flush here).
void FlushSelectorMetrics(const SelectionResult& result, size_t num_props,
                          uint64_t dsf_trial_merges, uint64_t dsf_union_edges) {
  auto& metrics = obs::MetricsRegistry::Default();
  metrics.CounterRef("mpc.selector.iterations").Inc(result.iterations);
  metrics.CounterRef("mpc.selector.pruned_properties")
      .Inc(result.pruned_properties);
  metrics.CounterRef("mpc.dsf.trial_merges").Inc(dsf_trial_merges);
  metrics.CounterRef("mpc.dsf.union_edges").Inc(dsf_union_edges);
  metrics.GaugeRef("mpc.selector.internal_properties")
      .Set(static_cast<double>(result.num_internal));
  metrics.GaugeRef("mpc.selector.crossing_properties")
      .Set(static_cast<double>(num_props - result.num_internal));
  metrics.GaugeRef("mpc.selector.final_cost")
      .Set(static_cast<double>(result.final_cost));
}

}  // namespace

SelectionResult GreedySelector::Select(const rdf::RdfGraph& graph) const {
  const size_t num_props = graph.num_properties();
  const size_t cap = BalanceCap(graph, options_.base.k, options_.base.epsilon);
  const int threads = ResolveNumThreads(options_.base.num_threads);
  SelectionResult result = MakeEmptyResult(num_props);
  obs::TraceSpan select_span("mpc.select.greedy");
  select_span.Attr("properties", static_cast<uint64_t>(num_props))
      .Attr("cap", static_cast<uint64_t>(cap));
  uint64_t dsf_trial_merges = 0;
  uint64_t dsf_union_edges = 0;

  // Lines 2-4 of Algorithm 1: per-property WCC cost; prune properties
  // that alone exceed the cap (Section IV-E heuristic 1). Each property's
  // Cost({p}) uses a forest local to that property's edges, so the costs
  // evaluate in parallel; pruning and heap construction stay serial in
  // property order so the heap contents are thread-count independent.
  std::vector<size_t> single_cost(num_props);
  std::vector<size_t> frequency(num_props);
  ParallelFor(0, num_props, 1, threads, [&](size_t p) {
    auto edges = graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p));
    single_cost[p] = dsf::MaxWccOfEdges(edges);
    frequency[p] = edges.size();
  });

  struct Candidate {
    size_t cached_cost;  // lower bound on Cost(L_in ∪ {p})
    size_t frequency;
    rdf::PropertyId property;
    // Min-heap by cost; ties prefer more frequent (more edges become
    // internal), then lower id for determinism.
    bool operator>(const Candidate& o) const {
      if (cached_cost != o.cached_cost) return cached_cost > o.cached_cost;
      if (frequency != o.frequency) return frequency < o.frequency;
      return property > o.property;
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap;
  for (size_t p = 0; p < num_props; ++p) {
    if (single_cost[p] > cap) {
      ++result.pruned_properties;
      continue;
    }
    heap.push({std::max<size_t>(single_cost[p], 1), frequency[p],
               static_cast<rdf::PropertyId>(p)});
  }

  // Lines 5-16: repeatedly select the property minimizing
  // Cost(L_in ∪ {p}). Lazy evaluation: cached costs only become stale
  // upward (monotone), so if a recomputed top is still no worse than the
  // next cached entry it is the exact argmin.
  dsf::DisjointSetForest base(graph.num_vertices());
  while (!heap.empty()) {
    obs::TraceSpan iter_span("mpc.select.iteration");
    Candidate top = heap.top();
    heap.pop();
    auto edges = graph.EdgesWithProperty(top.property);
    size_t fresh_cost = dsf::TrialMergeMaxComponent(base, edges);
    ++dsf_trial_merges;
    ++result.iterations;
    iter_span.Attr("property", static_cast<uint64_t>(top.property))
        .Attr("cost", static_cast<uint64_t>(fresh_cost))
        .Attr("lcross", static_cast<uint64_t>(num_props - result.num_internal));
    if (fresh_cost > cap) continue;  // infeasible now; forever infeasible
    if (!heap.empty()) {
      Candidate next = heap.top();
      if (Candidate{fresh_cost, top.frequency, top.property} > next) {
        // Stale: push back with refreshed bound and re-examine.
        heap.push({fresh_cost, top.frequency, top.property});
        continue;
      }
    }
    // Commit p_opt (lines 15-16).
    base.AddEdges(edges);
    dsf_union_edges += edges.size();
    result.internal[top.property] = true;
    ++result.num_internal;
    result.final_cost = std::max(result.final_cost,
                                 base.max_component_size());
  }
  if (result.num_internal == 0) result.final_cost = 0;
  select_span.Attr("iterations", static_cast<uint64_t>(result.iterations))
      .Attr("internal", static_cast<uint64_t>(result.num_internal))
      .Attr("final_cost", static_cast<uint64_t>(result.final_cost));
  FlushSelectorMetrics(result, num_props, dsf_trial_merges, dsf_union_edges);
  return result;
}

SelectionResult BackwardSelector::Select(const rdf::RdfGraph& graph) const {
  const size_t num_props = graph.num_properties();
  const size_t cap = BalanceCap(graph, options_.base.k, options_.base.epsilon);
  const int threads = ResolveNumThreads(options_.base.num_threads);
  SelectionResult result = MakeEmptyResult(num_props);
  obs::TraceSpan select_span("mpc.select.backward");
  select_span.Attr("properties", static_cast<uint64_t>(num_props))
      .Attr("cap", static_cast<uint64_t>(cap));
  uint64_t dsf_union_edges = 0;

  // Start with every property internal (Section IV-E heuristic 2).
  std::vector<bool> selected(num_props, true);
  size_t num_selected = num_props;

  while (true) {
    obs::TraceSpan iter_span("mpc.select.iteration");
    iter_span.Attr("lcross", static_cast<uint64_t>(num_props - num_selected));
    ++result.iterations;
    // Rebuild the forest over the currently selected properties.
    dsf::DisjointSetForest forest(graph.num_vertices());
    for (size_t p = 0; p < num_props; ++p) {
      if (!selected[p]) continue;
      auto edges = graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p));
      forest.AddEdges(edges);
      dsf_union_edges += edges.size();
    }
    const size_t cost = forest.max_component_size();
    iter_span.Attr("cost", static_cast<uint64_t>(cost));
    if (cost <= cap || num_selected == 0) {
      result.final_cost = num_selected == 0 ? 0 : cost;
      break;
    }

    // Identify the largest component's root and the second-largest
    // component size (the floor any removal can reach this step). The
    // scan also snapshots every vertex's root: Find() compresses paths
    // (mutating), so the parallel sections below read this snapshot
    // instead of touching the forest.
    std::vector<uint32_t> root_of(graph.num_vertices());
    uint32_t giant_root = 0;
    size_t second_max = 0;
    {
      std::unordered_set<uint32_t> seen_roots;
      size_t best = 0;
      for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
        uint32_t root = forest.Find(v);
        root_of[v] = root;
        if (!seen_roots.insert(root).second) continue;
        size_t size = forest.SizeOfRoot(root);
        if (size > best) {
          second_max = best;
          best = size;
          giant_root = root;
        } else if (size > second_max) {
          second_max = size;
        }
      }
    }

    // Candidates: properties with edges inside the giant component,
    // ranked by their edge count there (removing a heavy property is the
    // likeliest to shatter it). Counting per property is independent;
    // each property writes only its own slot.
    std::vector<size_t> giant_edges(num_props, 0);
    ParallelFor(0, num_props, 1, threads, [&](size_t p) {
      if (!selected[p]) return;
      size_t count = 0;
      for (const rdf::Triple& t :
           graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p))) {
        // An edge of a selected property touching the giant WCC lies
        // entirely inside it.
        if (root_of[t.subject] == giant_root) ++count;
      }
      giant_edges[p] = count;
    });

    std::vector<std::pair<size_t, rdf::PropertyId>> ranked;
    for (size_t p = 0; p < num_props; ++p) {
      if (giant_edges[p] > 0) {
        ranked.emplace_back(giant_edges[p], static_cast<rdf::PropertyId>(p));
      }
    }
    assert(!ranked.empty());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t num_candidates =
        std::min<size_t>(ranked.size(),
                         static_cast<size_t>(options_.backward_candidates));

    // Exact evaluation of each candidate, restricted to the giant
    // component: removing p can only split the giant; everything else is
    // unchanged, so new_cost = max(second_max, maxWCC(giant minus p)).
    // Candidates evaluate in parallel, each on its own local forest; the
    // argmin over candidate rank order stays serial for determinism.
    std::vector<size_t> candidate_cost(num_candidates);
    ParallelFor(0, num_candidates, 1, threads, [&](size_t c) {
      rdf::PropertyId candidate = ranked[c].second;
      dsf::DisjointSetForest local(graph.num_vertices());
      for (size_t p = 0; p < num_props; ++p) {
        if (!selected[p] || p == candidate) continue;
        for (const rdf::Triple& t :
             graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p))) {
          if (root_of[t.subject] != giant_root) continue;
          local.Union(t.subject, t.object);
        }
      }
      // local's max component counts singletons as 1, which is correct:
      // giant vertices isolated by the removal become singleton WCCs.
      candidate_cost[c] = std::max(second_max, local.max_component_size());
    });
    rdf::PropertyId best_property = ranked[0].second;
    size_t best_new_cost = SIZE_MAX;
    for (size_t c = 0; c < num_candidates; ++c) {
      if (candidate_cost[c] < best_new_cost) {
        best_new_cost = candidate_cost[c];
        best_property = ranked[c].second;
      }
    }
    selected[best_property] = false;
    --num_selected;
  }

  result.internal = std::move(selected);
  result.num_internal = num_selected;
  select_span.Attr("iterations", static_cast<uint64_t>(result.iterations))
      .Attr("internal", static_cast<uint64_t>(result.num_internal))
      .Attr("final_cost", static_cast<uint64_t>(result.final_cost));
  FlushSelectorMetrics(result, num_props, /*dsf_trial_merges=*/0,
                       dsf_union_edges);
  return result;
}

SelectionResult ExactSelector::Select(const rdf::RdfGraph& graph) const {
  const size_t num_props = graph.num_properties();
  const size_t cap = BalanceCap(graph, options_.base.k, options_.base.epsilon);
  const int threads = ResolveNumThreads(options_.base.num_threads);
  obs::TraceSpan select_span("mpc.select.exact");
  select_span.Attr("properties", static_cast<uint64_t>(num_props))
      .Attr("cap", static_cast<uint64_t>(cap));

  // Seed the incumbent with the greedy solution: strong bound, and the
  // fallback answer if the node budget runs out.
  GreedySelector greedy(options_);
  SelectionResult best = greedy.Select(graph);
  best.optimal = false;

  // Feasible properties only; a property infeasible alone is infeasible
  // in any superset (monotonicity). Costs evaluate in parallel; the
  // filter runs serially in property order.
  struct Prop {
    rdf::PropertyId id;
    size_t single_cost;
  };
  std::vector<size_t> single_cost(num_props);
  ParallelFor(0, num_props, 1, threads, [&](size_t p) {
    single_cost[p] = dsf::MaxWccOfEdges(
        graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p)));
  });
  std::vector<Prop> props;
  for (size_t p = 0; p < num_props; ++p) {
    if (single_cost[p] <= cap) {
      props.push_back({static_cast<rdf::PropertyId>(p), single_cost[p]});
    }
  }
  // Decide high-conflict (expensive) properties first: failures prune
  // whole subtrees early.
  std::sort(props.begin(), props.end(), [](const Prop& a, const Prop& b) {
    return a.single_cost > b.single_cost;
  });

  size_t nodes = 0;
  bool budget_exhausted = false;
  std::vector<bool> current(num_props, false);

  // DFS with an explicit copy of the forest per include-branch. The
  // include branch is explored first so good incumbents arrive early.
  auto dfs = [&](auto&& self, size_t index, size_t count,
                 const dsf::DisjointSetForest& forest) -> void {
    if (budget_exhausted) return;
    if (++nodes > options_.exact_node_budget) {
      budget_exhausted = true;
      return;
    }
    if (count + (props.size() - index) <= best.num_internal) return;
    if (index == props.size()) {
      // count > best.num_internal is guaranteed by the bound above.
      best.internal = current;
      best.num_internal = count;
      best.final_cost = forest.max_component_size();
      return;
    }
    const Prop& prop = props[index];
    auto edges = graph.EdgesWithProperty(prop.id);
    if (dsf::TrialMergeMaxComponent(forest, edges) <= cap) {
      dsf::DisjointSetForest extended = forest;  // copy, then commit
      extended.AddEdges(edges);
      current[prop.id] = true;
      self(self, index + 1, count + 1, extended);
      current[prop.id] = false;
    }
    self(self, index + 1, count, forest);
  };

  dsf::DisjointSetForest root(graph.num_vertices());
  dfs(dfs, 0, 0, root);

  best.iterations = nodes;
  best.optimal = !budget_exhausted;
  select_span.Attr("nodes", static_cast<uint64_t>(nodes))
      .Attr("optimal", static_cast<uint64_t>(best.optimal ? 1 : 0));
  obs::MetricsRegistry::Default()
      .CounterRef("mpc.selector.exact_nodes")
      .Inc(nodes);
  // final_cost of the greedy seed may be stale if exact found nothing
  // better; recompute for consistency.
  if (best.num_internal > 0) {
    dsf::DisjointSetForest check(graph.num_vertices());
    for (size_t p = 0; p < num_props; ++p) {
      if (best.internal[p]) {
        check.AddEdges(graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p)));
      }
    }
    best.final_cost = check.max_component_size();
  } else {
    best.final_cost = 0;
  }
  return best;
}

SelectionResult AutoSelector::Select(const rdf::RdfGraph& graph) const {
  if (graph.num_properties() <= auto_threshold_) {
    return GreedySelector(options_).Select(graph);
  }
  return BackwardSelector(options_).Select(graph);
}

}  // namespace mpc::core

#ifndef MPC_MPC_SELECTOR_H_
#define MPC_MPC_SELECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partitioner.h"
#include "rdf/graph.h"

namespace mpc::core {

/// The balance cap of Definition 4.1: (1 + epsilon) * |V| / k. A property
/// set L' is feasible as internal iff Cost(L') (the largest WCC of
/// G[L'], Definition 4.2) stays at or below this bound.
size_t BalanceCap(const rdf::RdfGraph& graph, uint32_t k, double epsilon);

/// Output of internal property selection (Algorithm 1 and variants).
struct SelectionResult {
  /// internal[p] is true iff property p was chosen for L_in.
  std::vector<bool> internal;
  size_t num_internal = 0;
  /// Cost(L_in): largest WCC in G[L_in] after selection.
  size_t final_cost = 0;
  /// Greedy iterations / exact search nodes, for the analysis benches.
  size_t iterations = 0;
  /// Properties discarded up front because Cost({p}) alone already
  /// exceeds the cap (the rdf:type pruning heuristic of Section IV-E).
  size_t pruned_properties = 0;
  /// True when the selector proved optimality (ExactSelector within its
  /// node budget); false for heuristics.
  bool optimal = false;
};

struct SelectorOptions {
  /// k, epsilon, seed and num_threads, shared with every partitioner.
  /// Selection parallelizes the per-property cost evaluations; the result
  /// is bit-identical at any thread count.
  partition::PartitionerOptions base;
  /// BackwardSelector: how many highest-impact candidate properties are
  /// exactly evaluated per removal step.
  int backward_candidates = 16;
  /// ExactSelector: search-node budget before falling back to the best
  /// found so far (result.optimal reports whether the budget sufficed).
  size_t exact_node_budget = 4'000'000;
};

/// Strategy interface for choosing L_in, the set of internal properties
/// that MPC maximizes (Section IV-C).
class InternalPropertySelector {
 public:
  virtual ~InternalPropertySelector() = default;
  virtual std::string name() const = 0;
  virtual SelectionResult Select(const rdf::RdfGraph& graph) const = 0;
};

/// Algorithm 1 with the Section IV-D disjoint-set-forest optimization and
/// the Section IV-E pruning heuristic, plus lazy re-evaluation: because
/// Cost(L_in ∪ {p}) is non-decreasing as L_in grows, stale candidate
/// costs are lower bounds, so a priority queue with recompute-on-pop
/// returns exactly the argmin of Algorithm 1's inner loop without
/// scanning every property each iteration.
class GreedySelector : public InternalPropertySelector {
 public:
  explicit GreedySelector(SelectorOptions options) : options_(options) {}
  std::string name() const override { return "greedy"; }
  SelectionResult Select(const rdf::RdfGraph& graph) const override;

 private:
  SelectorOptions options_;
};

/// The second Section IV-E heuristic for property-rich graphs (DBpedia,
/// LGD): start from L_in = L and greedily remove the property whose
/// removal most reduces Cost(L_in) until the cap is met. Candidate
/// evaluation is restricted to properties inside the current largest WCC
/// (removing any other property cannot reduce the cost).
class BackwardSelector : public InternalPropertySelector {
 public:
  explicit BackwardSelector(SelectorOptions options) : options_(options) {}
  std::string name() const override { return "backward"; }
  SelectionResult Select(const rdf::RdfGraph& graph) const override;

 private:
  SelectorOptions options_;
};

/// MPC-Exact (Section VI-D4): branch-and-bound over property subsets,
/// maximizing |L_in| subject to Cost(L_in) <= cap. Monotonicity of the
/// cost function makes infeasible-prefix pruning sound; the greedy result
/// seeds the incumbent. Exponential worst case — intended for graphs with
/// few properties (the paper only runs it on LUBM's 18).
class ExactSelector : public InternalPropertySelector {
 public:
  explicit ExactSelector(SelectorOptions options) : options_(options) {}
  std::string name() const override { return "exact"; }
  SelectionResult Select(const rdf::RdfGraph& graph) const override;

 private:
  SelectorOptions options_;
};

/// Picks GreedySelector for graphs with at most `auto_threshold`
/// properties and BackwardSelector above it, mirroring how the paper
/// switches heuristics between LUBM-like and DBpedia-like datasets.
class AutoSelector : public InternalPropertySelector {
 public:
  AutoSelector(SelectorOptions options, size_t auto_threshold = 512)
      : options_(options), auto_threshold_(auto_threshold) {}
  std::string name() const override { return "auto"; }
  SelectionResult Select(const rdf::RdfGraph& graph) const override;

 private:
  SelectorOptions options_;
  size_t auto_threshold_;
};

}  // namespace mpc::core

#endif  // MPC_MPC_SELECTOR_H_

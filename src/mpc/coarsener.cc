#include "mpc/coarsener.h"

#include <cassert>

#include "dsf/disjoint_set_forest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::core {

CoarsenedGraph CoarsenByInternalProperties(
    const rdf::RdfGraph& graph, const std::vector<bool>& internal_mask) {
  assert(internal_mask.size() == graph.num_properties());

  // WCCs of G[L_in] via union-find over the internal-property edges.
  uint64_t internal_edges = 0;
  dsf::DisjointSetForest forest(graph.num_vertices());
  {
    MPC_TRACE_SPAN("mpc.coarsen.wcc");
    for (size_t p = 0; p < internal_mask.size(); ++p) {
      if (!internal_mask[p]) continue;
      auto edges = graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p));
      forest.AddEdges(edges);
      internal_edges += edges.size();
    }
  }

  CoarsenedGraph result;
  result.vertex_to_super = forest.ComponentLabels();
  result.num_supervertices = forest.num_components();

  std::vector<uint64_t> super_weights(result.num_supervertices, 0);
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    ++super_weights[result.vertex_to_super[v]];
  }

  // Only crossing-candidate (non-internal) property edges survive in G_c.
  std::vector<metis::WeightedEdge> edges;
  {
    MPC_TRACE_SPAN("mpc.coarsen.build_csr");
    for (size_t p = 0; p < internal_mask.size(); ++p) {
      if (internal_mask[p]) continue;
      for (const rdf::Triple& t :
           graph.EdgesWithProperty(static_cast<rdf::PropertyId>(p))) {
        uint32_t su = result.vertex_to_super[t.subject];
        uint32_t sv = result.vertex_to_super[t.object];
        if (su != sv) edges.push_back({su, sv, 1});
      }
    }
    result.graph = metis::CsrGraph::FromEdges(result.num_supervertices, edges,
                                              std::move(super_weights));
  }
  auto& metrics = obs::MetricsRegistry::Default();
  metrics.CounterRef("mpc.dsf.union_edges").Inc(internal_edges);
  metrics.CounterRef("mpc.coarsen.runs").Inc();
  return result;
}

}  // namespace mpc::core

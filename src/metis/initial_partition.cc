#include "metis/initial_partition.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace mpc::metis {

std::vector<uint32_t> GreedyGrowPartition(const CsrGraph& graph, uint32_t k,
                                          Rng& rng) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> part(n, UINT32_MAX);
  if (k == 0) return part;
  if (k == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  const double target =
      static_cast<double>(graph.total_vertex_weight()) / k;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  size_t seed_cursor = 0;

  std::vector<uint64_t> part_weight(k, 0);

  // Grow the first k-1 regions; the last region takes what remains.
  for (uint32_t p = 0; p + 1 < k; ++p) {
    // Find an unassigned seed.
    while (seed_cursor < n && part[order[seed_cursor]] != UINT32_MAX) {
      ++seed_cursor;
    }
    if (seed_cursor >= n) break;

    std::deque<uint32_t> frontier;
    frontier.push_back(order[seed_cursor]);
    while (part_weight[p] < target) {
      uint32_t v = UINT32_MAX;
      while (!frontier.empty()) {
        uint32_t cand = frontier.front();
        frontier.pop_front();
        if (part[cand] == UINT32_MAX) {
          v = cand;
          break;
        }
      }
      if (v == UINT32_MAX) {
        // Region can't grow further (component exhausted); restart from a
        // fresh unassigned seed so the region keeps filling toward target.
        while (seed_cursor < n && part[order[seed_cursor]] != UINT32_MAX) {
          ++seed_cursor;
        }
        if (seed_cursor >= n) break;
        frontier.push_back(order[seed_cursor]);
        continue;
      }
      part[v] = p;
      part_weight[p] += graph.VertexWeight(v);
      for (const Adjacency& a : graph.Neighbors(v)) {
        if (part[a.neighbor] == UINT32_MAX) frontier.push_back(a.neighbor);
      }
    }
  }

  // Remaining vertices: sweep into the currently lightest partition. This
  // both fills the last region and absorbs disconnected leftovers.
  for (uint32_t v : order) {
    if (part[v] != UINT32_MAX) continue;
    uint32_t lightest = 0;
    for (uint32_t p = 1; p < k; ++p) {
      if (part_weight[p] < part_weight[lightest]) lightest = p;
    }
    part[v] = lightest;
    part_weight[lightest] += graph.VertexWeight(v);
  }
  return part;
}

std::vector<uint32_t> RandomPartition(const CsrGraph& graph, uint32_t k,
                                      Rng& rng) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> part(n);
  if (k <= 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }
  // Weighted round-robin over a shuffled order keeps weights balanced.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<uint64_t> part_weight(k, 0);
  for (uint32_t v : order) {
    uint32_t lightest = 0;
    for (uint32_t p = 1; p < k; ++p) {
      if (part_weight[p] < part_weight[lightest]) lightest = p;
    }
    part[v] = lightest;
    part_weight[lightest] += graph.VertexWeight(v);
  }
  return part;
}

}  // namespace mpc::metis

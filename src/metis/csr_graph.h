#ifndef MPC_METIS_CSR_GRAPH_H_
#define MPC_METIS_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/types.h"

namespace mpc::metis {

/// One endpoint of an adjacency: the neighbor vertex and the (combined)
/// weight of the edges to it.
struct Adjacency {
  uint32_t neighbor;
  uint32_t weight;
};

/// An undirected edge with multiplicity/weight, the input unit for
/// CsrGraph construction.
struct WeightedEdge {
  uint32_t u;
  uint32_t v;
  uint32_t weight = 1;
};

/// Undirected, vertex- and edge-weighted graph in compressed sparse row
/// form — the input format of the multilevel partitioner, mirroring the
/// METIS API the paper calls into. Parallel edges are combined (weights
/// summed) and self-loops dropped during construction.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list over vertices [0, n). `vertex_weights` may
  /// be empty (all weights 1) or have exactly n entries.
  static CsrGraph FromEdges(size_t n, std::span<const WeightedEdge> edges,
                            std::vector<uint64_t> vertex_weights = {});

  /// Builds the undirected structure graph of an RDF triple set:
  /// each directed labeled edge contributes weight 1 between its
  /// endpoints (direction and label dropped, as min edge-cut ignores
  /// both).
  static CsrGraph FromTriples(size_t n, std::span<const rdf::Triple> triples);

  size_t num_vertices() const {
    return xadj_.empty() ? 0 : xadj_.size() - 1;
  }
  size_t num_adjacencies() const { return adj_.size(); }

  std::span<const Adjacency> Neighbors(uint32_t v) const {
    return std::span<const Adjacency>(adj_.data() + xadj_[v],
                                      xadj_[v + 1] - xadj_[v]);
  }
  size_t Degree(uint32_t v) const { return xadj_[v + 1] - xadj_[v]; }

  uint64_t VertexWeight(uint32_t v) const { return vwgt_[v]; }
  uint64_t total_vertex_weight() const { return total_vwgt_; }

 private:
  /// Symmetric directed half-edge used during construction.
  struct HalfEdge {
    uint32_t from;
    uint32_t to;
    uint32_t weight;
    bool operator<(const HalfEdge& o) const {
      if (from != o.from) return from < o.from;
      return to < o.to;
    }
  };

  static CsrGraph FromHalfEdges(size_t n, std::vector<HalfEdge> half,
                                std::vector<uint64_t> vertex_weights);

  std::vector<uint64_t> xadj_;  // size n+1
  std::vector<Adjacency> adj_;
  std::vector<uint64_t> vwgt_;  // size n
  uint64_t total_vwgt_ = 0;
};

/// Sum of weights of edges whose endpoints land in different partitions.
uint64_t EdgeCut(const CsrGraph& graph, std::span<const uint32_t> part);

/// Maximum partition vertex-weight divided by the perfectly balanced
/// weight (total/k). 1.0 means perfectly balanced.
double BalanceRatio(const CsrGraph& graph, std::span<const uint32_t> part,
                    uint32_t k);

}  // namespace mpc::metis

#endif  // MPC_METIS_CSR_GRAPH_H_

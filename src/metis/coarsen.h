#ifndef MPC_METIS_COARSEN_H_
#define MPC_METIS_COARSEN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "metis/csr_graph.h"

namespace mpc::metis {

/// One level of the coarsening hierarchy: the coarse graph plus the map
/// from each fine vertex to its coarse supervertex.
struct CoarseLevel {
  CsrGraph graph;
  std::vector<uint32_t> fine_to_coarse;
};

/// Heavy-edge matching: visits vertices in random order; each unmatched
/// vertex matches the unmatched neighbor reachable over the heaviest edge
/// (standard METIS HEM). Returns match[v] = partner (v itself when
/// unmatched).
std::vector<uint32_t> HeavyEdgeMatching(const CsrGraph& graph, Rng& rng);

/// Contracts a matching into the coarse graph: matched pairs fuse into a
/// supervertex whose weight is the pair's weight sum; parallel coarse
/// edges combine their weights.
CoarseLevel ContractMatching(const CsrGraph& graph,
                             const std::vector<uint32_t>& match);

/// Repeatedly matches and contracts until the graph has at most
/// `target_vertices` vertices or a round shrinks it by less than 10%.
/// Returns the hierarchy from finest (index 0, the input's first
/// contraction) to coarsest.
std::vector<CoarseLevel> CoarsenToSize(const CsrGraph& graph,
                                       size_t target_vertices, Rng& rng);

}  // namespace mpc::metis

#endif  // MPC_METIS_COARSEN_H_

#include "metis/csr_graph.h"

#include <algorithm>
#include <cassert>

namespace mpc::metis {

CsrGraph CsrGraph::FromEdges(size_t n, std::span<const WeightedEdge> edges,
                             std::vector<uint64_t> vertex_weights) {
  std::vector<HalfEdge> half;
  half.reserve(edges.size() * 2);
  for (const WeightedEdge& e : edges) {
    assert(e.u < n && e.v < n);
    if (e.u == e.v) continue;  // self-loops never contribute to a cut
    half.push_back({e.u, e.v, e.weight});
    half.push_back({e.v, e.u, e.weight});
  }
  return FromHalfEdges(n, std::move(half), std::move(vertex_weights));
}

CsrGraph CsrGraph::FromTriples(size_t n,
                               std::span<const rdf::Triple> triples) {
  std::vector<HalfEdge> half;
  half.reserve(triples.size() * 2);
  for (const rdf::Triple& t : triples) {
    if (t.subject == t.object) continue;
    half.push_back({t.subject, t.object, 1});
    half.push_back({t.object, t.subject, 1});
  }
  return FromHalfEdges(n, std::move(half), {});
}

CsrGraph CsrGraph::FromHalfEdges(size_t n, std::vector<HalfEdge> half,
                                 std::vector<uint64_t> vertex_weights) {
  std::sort(half.begin(), half.end());

  CsrGraph g;
  g.xadj_.assign(n + 1, 0);
  g.adj_.reserve(half.size());
  // Combine parallel edges: consecutive equal (from, to) pairs sum their
  // weights into one adjacency.
  size_t i = 0;
  while (i < half.size()) {
    size_t j = i;
    uint64_t w = 0;
    while (j < half.size() && half[j].from == half[i].from &&
           half[j].to == half[i].to) {
      w += half[j].weight;
      ++j;
    }
    g.adj_.push_back({half[i].to, static_cast<uint32_t>(
                                      std::min<uint64_t>(w, UINT32_MAX))});
    ++g.xadj_[half[i].from + 1];
    i = j;
  }
  for (size_t v = 0; v < n; ++v) g.xadj_[v + 1] += g.xadj_[v];

  if (vertex_weights.empty()) {
    g.vwgt_.assign(n, 1);
    g.total_vwgt_ = n;
  } else {
    assert(vertex_weights.size() == n);
    g.vwgt_ = std::move(vertex_weights);
    g.total_vwgt_ = 0;
    for (uint64_t w : g.vwgt_) g.total_vwgt_ += w;
  }
  return g;
}

uint64_t EdgeCut(const CsrGraph& graph, std::span<const uint32_t> part) {
  uint64_t cut2 = 0;  // each cut edge counted from both endpoints
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    for (const Adjacency& a : graph.Neighbors(v)) {
      if (part[v] != part[a.neighbor]) cut2 += a.weight;
    }
  }
  return cut2 / 2;
}

double BalanceRatio(const CsrGraph& graph, std::span<const uint32_t> part,
                    uint32_t k) {
  std::vector<uint64_t> weight(k, 0);
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    weight[part[v]] += graph.VertexWeight(v);
  }
  uint64_t max_w = *std::max_element(weight.begin(), weight.end());
  double ideal =
      static_cast<double>(graph.total_vertex_weight()) / static_cast<double>(k);
  return ideal == 0 ? 1.0 : static_cast<double>(max_w) / ideal;
}

}  // namespace mpc::metis

#include "metis/refine.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mpc::metis {

namespace {

uint64_t BalanceCap(const CsrGraph& graph, const RefineOptions& options) {
  double cap = (1.0 + options.epsilon) *
               static_cast<double>(graph.total_vertex_weight()) /
               static_cast<double>(options.k);
  return static_cast<uint64_t>(cap);
}

std::vector<uint64_t> PartitionWeights(const CsrGraph& graph,
                                       const std::vector<uint32_t>& part,
                                       uint32_t k) {
  std::vector<uint64_t> weight(k, 0);
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    weight[part[v]] += graph.VertexWeight(v);
  }
  return weight;
}

}  // namespace

void RefinePartition(const CsrGraph& graph, const RefineOptions& options,
                     std::vector<uint32_t>* part_ptr) {
  std::vector<uint32_t>& part = *part_ptr;
  const size_t n = graph.num_vertices();
  const uint32_t k = options.k;
  if (k <= 1 || n == 0) return;

  const uint64_t cap = BalanceCap(graph, options);
  std::vector<uint64_t> weight = PartitionWeights(graph, part, k);

  // conn[p] rebuilt per vertex: total edge weight from v into partition p.
  std::vector<uint64_t> conn(k, 0);
  std::vector<uint32_t> touched;
  touched.reserve(k);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool moved_any = false;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t from = part[v];
      // Gather connectivity to each adjacent partition.
      for (uint32_t p : touched) conn[p] = 0;
      touched.clear();
      bool boundary = false;
      for (const Adjacency& a : graph.Neighbors(v)) {
        uint32_t p = part[a.neighbor];
        if (conn[p] == 0) touched.push_back(p);
        conn[p] += a.weight;
        if (p != from) boundary = true;
      }
      if (!boundary) continue;

      // Best destination: maximize gain = conn[to] - conn[from]; respect
      // the weight cap on the destination.
      const uint64_t vw = graph.VertexWeight(v);
      uint32_t best_to = from;
      int64_t best_gain = 0;
      uint64_t best_dest_weight = 0;
      for (uint32_t to : touched) {
        if (to == from) continue;
        if (weight[to] + vw > cap) continue;
        int64_t gain = static_cast<int64_t>(conn[to]) -
                       static_cast<int64_t>(conn[from]);
        bool better =
            gain > best_gain ||
            // Zero-gain move accepted only when it strictly improves
            // balance (moves weight from a heavier to a lighter side).
            (gain == 0 && best_to == from && weight[to] + vw < weight[from]);
        if (better || (gain == best_gain && best_to != from &&
                       weight[to] < best_dest_weight)) {
          best_gain = gain;
          best_to = to;
          best_dest_weight = weight[to];
        }
      }
      if (best_to != from) {
        weight[from] -= vw;
        weight[best_to] += vw;
        part[v] = best_to;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

void EnforceBalance(const CsrGraph& graph, const RefineOptions& options,
                    std::vector<uint32_t>* part_ptr) {
  std::vector<uint32_t>& part = *part_ptr;
  const size_t n = graph.num_vertices();
  const uint32_t k = options.k;
  if (k <= 1 || n == 0) return;

  const uint64_t cap = BalanceCap(graph, options);
  std::vector<uint64_t> weight = PartitionWeights(graph, part, k);

  // Vertices of each partition, heaviest-connectivity-inside last so we
  // evict the loosest-attached vertices first.
  for (uint32_t p = 0; p < k; ++p) {
    if (weight[p] <= cap) continue;
    // Collect members with their internal connectivity.
    std::vector<std::pair<uint64_t, uint32_t>> members;  // (internal_w, v)
    for (uint32_t v = 0; v < n; ++v) {
      if (part[v] != p) continue;
      uint64_t internal = 0;
      for (const Adjacency& a : graph.Neighbors(v)) {
        if (part[a.neighbor] == p) internal += a.weight;
      }
      members.emplace_back(internal, v);
    }
    std::sort(members.begin(), members.end());
    for (const auto& [internal, v] : members) {
      if (weight[p] <= cap) break;
      // Single supervertex heavier than the cap cannot be fixed by moves.
      const uint64_t vw = graph.VertexWeight(v);
      if (vw > cap) continue;
      uint32_t lightest = (p == 0) ? 1 : 0;
      for (uint32_t q = 0; q < k; ++q) {
        if (q != p && weight[q] < weight[lightest]) lightest = q;
      }
      if (weight[lightest] + vw > cap) continue;  // nowhere to put it
      part[v] = lightest;
      weight[p] -= vw;
      weight[lightest] += vw;
    }
  }
}

}  // namespace mpc::metis

#ifndef MPC_METIS_PARTITIONER_H_
#define MPC_METIS_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "metis/csr_graph.h"

namespace mpc::metis {

/// Options for the multilevel k-way partitioner. Defaults mirror the
/// settings the paper uses for its METIS baseline (k = number of sites,
/// epsilon = allowed imbalance from Definition 4.1).
struct MlpOptions {
  uint32_t k = 8;
  double epsilon = 0.05;
  uint64_t seed = 1;
  /// Coarsening stops at max(coarsen_target_per_part * k, 64) vertices.
  size_t coarsen_target_per_part = 30;
  int refine_passes = 8;
};

/// From-scratch multilevel k-way minimum edge-cut partitioner standing in
/// for METIS [20]: heavy-edge-matching coarsening, greedy graph-growing
/// initial partitioning on the coarsest graph, and FM-style boundary
/// refinement at every uncoarsening level, under the balance constraint
/// max_p w(F_p) <= (1+epsilon) * W / k.
///
/// Used in two places, exactly as the paper uses METIS: (a) as the
/// minimum edge-cut baseline ("METIS" rows/series), and (b) inside MPC to
/// partition the coarsened supervertex graph G_c (Section IV-B).
class MultilevelPartitioner {
 public:
  explicit MultilevelPartitioner(MlpOptions options) : options_(options) {}

  /// Returns part[v] in [0, k) for every vertex of `graph`.
  std::vector<uint32_t> Partition(const CsrGraph& graph) const;

  const MlpOptions& options() const { return options_; }

 private:
  MlpOptions options_;
};

}  // namespace mpc::metis

#endif  // MPC_METIS_PARTITIONER_H_

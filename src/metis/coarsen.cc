#include "metis/coarsen.h"

#include <algorithm>
#include <numeric>

namespace mpc::metis {

std::vector<uint32_t> HeavyEdgeMatching(const CsrGraph& graph, Rng& rng) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> match(n);
  std::iota(match.begin(), match.end(), 0);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<bool> matched(n, false);
  for (uint32_t v : order) {
    if (matched[v]) continue;
    uint32_t best = v;
    uint64_t best_weight = 0;
    for (const Adjacency& a : graph.Neighbors(v)) {
      if (matched[a.neighbor] || a.neighbor == v) continue;
      if (a.weight > best_weight) {
        best_weight = a.weight;
        best = a.neighbor;
      }
    }
    if (best != v) {
      match[v] = best;
      match[best] = v;
      matched[best] = true;
    }
    matched[v] = true;
  }
  return match;
}

CoarseLevel ContractMatching(const CsrGraph& graph,
                             const std::vector<uint32_t>& match) {
  const size_t n = graph.num_vertices();
  CoarseLevel level;
  level.fine_to_coarse.assign(n, UINT32_MAX);

  // Assign coarse ids: the lower-numbered endpoint of each pair claims the
  // next id; its partner reuses it.
  uint32_t next_id = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != UINT32_MAX) continue;
    uint32_t partner = match[v];
    level.fine_to_coarse[v] = next_id;
    level.fine_to_coarse[partner] = next_id;  // partner may equal v
    ++next_id;
  }

  std::vector<uint64_t> coarse_weights(next_id, 0);
  for (uint32_t v = 0; v < n; ++v) {
    coarse_weights[level.fine_to_coarse[v]] += graph.VertexWeight(v);
  }

  std::vector<WeightedEdge> coarse_edges;
  coarse_edges.reserve(graph.num_adjacencies() / 2);
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t cv = level.fine_to_coarse[v];
    for (const Adjacency& a : graph.Neighbors(v)) {
      uint32_t cu = level.fine_to_coarse[a.neighbor];
      // Emit each undirected edge once (from the smaller fine endpoint)
      // and drop edges internal to a supervertex.
      if (cv == cu || v > a.neighbor) continue;
      coarse_edges.push_back({cv, cu, a.weight});
    }
  }
  level.graph =
      CsrGraph::FromEdges(next_id, coarse_edges, std::move(coarse_weights));
  return level;
}

std::vector<CoarseLevel> CoarsenToSize(const CsrGraph& graph,
                                       size_t target_vertices, Rng& rng) {
  std::vector<CoarseLevel> hierarchy;
  const CsrGraph* current = &graph;
  while (current->num_vertices() > target_vertices) {
    std::vector<uint32_t> match = HeavyEdgeMatching(*current, rng);
    CoarseLevel level = ContractMatching(*current, match);
    // Stop if matching stalled (e.g. star graphs where HEM saturates).
    if (level.graph.num_vertices() >
        current->num_vertices() * 9 / 10) {
      break;
    }
    hierarchy.push_back(std::move(level));
    current = &hierarchy.back().graph;
  }
  return hierarchy;
}

}  // namespace mpc::metis

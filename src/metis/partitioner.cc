#include "metis/partitioner.h"

#include <algorithm>

#include "common/random.h"
#include "metis/coarsen.h"
#include "metis/initial_partition.h"
#include "metis/refine.h"
#include "obs/trace.h"

namespace mpc::metis {

std::vector<uint32_t> MultilevelPartitioner::Partition(
    const CsrGraph& graph) const {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> part(n, 0);
  if (n == 0 || options_.k <= 1) return part;

  Rng rng(options_.seed);
  RefineOptions refine_opts{.k = options_.k,
                            .epsilon = options_.epsilon,
                            .max_passes = options_.refine_passes};

  const size_t coarsen_target = std::max<size_t>(
      64, options_.coarsen_target_per_part * options_.k);

  std::vector<CoarseLevel> hierarchy;
  {
    obs::TraceSpan span("metis.coarsen");
    hierarchy = CoarsenToSize(graph, coarsen_target, rng);
    span.Attr("levels", static_cast<uint64_t>(hierarchy.size()));
  }

  const CsrGraph& coarsest =
      hierarchy.empty() ? graph : hierarchy.back().graph;

  std::vector<uint32_t> coarse_part;
  {
    MPC_TRACE_SPAN("metis.initial_partition");
    coarse_part = GreedyGrowPartition(coarsest, options_.k, rng);
    RefinePartition(coarsest, refine_opts, &coarse_part);
    EnforceBalance(coarsest, refine_opts, &coarse_part);
  }

  // Project back up through the hierarchy, refining at every level.
  MPC_TRACE_SPAN("metis.refine");
  for (size_t level = hierarchy.size(); level-- > 0;) {
    const CsrGraph& fine_graph =
        (level == 0) ? graph : hierarchy[level - 1].graph;
    const std::vector<uint32_t>& fine_to_coarse =
        hierarchy[level].fine_to_coarse;
    std::vector<uint32_t> fine_part(fine_graph.num_vertices());
    for (uint32_t v = 0; v < fine_part.size(); ++v) {
      fine_part[v] = coarse_part[fine_to_coarse[v]];
    }
    RefinePartition(fine_graph, refine_opts, &fine_part);
    EnforceBalance(fine_graph, refine_opts, &fine_part);
    coarse_part = std::move(fine_part);
  }
  return coarse_part;
}

}  // namespace mpc::metis

#ifndef MPC_METIS_INITIAL_PARTITION_H_
#define MPC_METIS_INITIAL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "metis/csr_graph.h"

namespace mpc::metis {

/// Greedy graph growing: grows k regions breadth-first from random seeds,
/// each until it reaches the balanced weight total/k, preferring frontier
/// vertices with the most connections into the growing region (GGGP).
/// Leftover vertices are swept into the lightest partitions. Produces a
/// valid assignment for any graph, connected or not.
std::vector<uint32_t> GreedyGrowPartition(const CsrGraph& graph, uint32_t k,
                                          Rng& rng);

/// Random balanced assignment, used as a quality floor in tests and as a
/// fallback when k >= n.
std::vector<uint32_t> RandomPartition(const CsrGraph& graph, uint32_t k,
                                      Rng& rng);

}  // namespace mpc::metis

#endif  // MPC_METIS_INITIAL_PARTITION_H_

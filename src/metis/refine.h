#ifndef MPC_METIS_REFINE_H_
#define MPC_METIS_REFINE_H_

#include <cstdint>
#include <vector>

#include "metis/csr_graph.h"

namespace mpc::metis {

struct RefineOptions {
  uint32_t k = 2;
  /// Per-partition weight cap: (1 + epsilon) * total / k.
  double epsilon = 0.05;
  /// Maximum greedy passes over the boundary per level.
  int max_passes = 8;
};

/// Greedy k-way boundary refinement in the Fiduccia–Mattheyses spirit:
/// each pass scans boundary vertices and moves a vertex to the adjacent
/// partition with the highest cut-weight gain, subject to the balance cap.
/// Zero-gain moves are taken only when they improve balance, which lets
/// the refiner escape plateaus without oscillating. Mutates `part`.
void RefinePartition(const CsrGraph& graph, const RefineOptions& options,
                     std::vector<uint32_t>* part);

/// Forces every partition under the (1+epsilon)*total/k cap by evicting
/// the cheapest boundary vertices from overweight partitions into the
/// lightest partitions. Called after refinement as a safety net; no-op
/// when already balanced.
void EnforceBalance(const CsrGraph& graph, const RefineOptions& options,
                    std::vector<uint32_t>* part);

}  // namespace mpc::metis

#endif  // MPC_METIS_REFINE_H_

#include "sparql/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>

namespace mpc::sparql {

namespace {

constexpr std::string_view kRdfType =
    "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>";

/// Hand-rolled lexer/parser state over the query text.
class ParserImpl {
 public:
  explicit ParserImpl(std::string_view text) : text_(text) {}

  Result<QueryGraph> Parse() {
    MPC_RETURN_IF_ERROR(ParsePrologue());
    MPC_RETURN_IF_ERROR(ParseSelect());
    MPC_RETURN_IF_ERROR(ParseWhere());
    MPC_RETURN_IF_ERROR(ParseSolutionModifiers());
    SkipWs();
    if (!AtEnd()) return Error("trailing input after '}'");
    return builder_.Build();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  /// Case-insensitive keyword match; consumes on success.
  bool ConsumeKeyword(std::string_view keyword) {
    SkipWs();
    if (text_.size() - pos_ < keyword.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    // Keyword must end at a token boundary.
    size_t after = pos_ + keyword.size();
    if (after < text_.size()) {
      char c = text_[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        return false;
      }
    }
    pos_ = after;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipWs();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(pos_) + ")");
  }

  Status ParsePrologue() {
    while (ConsumeKeyword("PREFIX")) {
      SkipWs();
      // prefix name up to ':'
      size_t start = pos_;
      while (!AtEnd() && Peek() != ':') ++pos_;
      if (AtEnd()) return Error("PREFIX missing ':'");
      std::string prefix(text_.substr(start, pos_ - start));
      ++pos_;  // ':'
      SkipWs();
      if (AtEnd() || Peek() != '<') return Error("PREFIX missing IRI");
      size_t end = text_.find('>', pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated PREFIX IRI");
      }
      // Store the IRI body without angle brackets for concatenation.
      prefixes_[prefix] =
          std::string(text_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
    }
    return Status::Ok();
  }

  Status ParseSelect() {
    if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");
    if (ConsumeKeyword("DISTINCT")) builder_.Distinct();
    SkipWs();
    if (ConsumeChar('*')) return Status::Ok();
    bool any = false;
    while (true) {
      SkipWs();
      if (AtEnd()) return Error("unexpected end in SELECT clause");
      char c = Peek();
      if (c != '?' && c != '$') break;
      ++pos_;
      std::string name = ScanVarName();
      if (name.empty()) return Error("empty variable name in SELECT");
      builder_.Select(name);
      any = true;
    }
    if (!any) return Error("SELECT requires '*' or at least one variable");
    return Status::Ok();
  }

  std::string ScanVarName() {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Status ParseWhere() {
    if (!ConsumeKeyword("WHERE")) return Error("expected WHERE");
    if (!ConsumeChar('{')) return Error("expected '{'");
    while (true) {
      SkipWs();
      if (AtEnd()) return Error("unterminated WHERE block");
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      QueryTerm s, p, o;
      MPC_RETURN_IF_ERROR(ParseTerm(&s, /*position=*/0));
      MPC_RETURN_IF_ERROR(ParseTerm(&p, /*position=*/1));
      MPC_RETURN_IF_ERROR(ParseTerm(&o, /*position=*/2));
      builder_.Add(std::move(s), std::move(p), std::move(o));
      SkipWs();
      if (!AtEnd() && Peek() == '.') ++pos_;  // optional trailing '.'
    }
    return Status::Ok();
  }

  Status ParseSolutionModifiers() {
    if (ConsumeKeyword("LIMIT")) {
      SkipWs();
      size_t start = pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      if (pos_ == start) return Error("LIMIT requires a number");
      builder_.Limit(static_cast<size_t>(std::stoull(
          std::string(text_.substr(start, pos_ - start)))));
    }
    return Status::Ok();
  }

  /// position: 0=subject, 1=predicate, 2=object.
  Status ParseTerm(QueryTerm* term, int position) {
    SkipWs();
    if (AtEnd()) return Error("unexpected end of pattern");
    char c = Peek();
    if (c == '?' || c == '$') {
      ++pos_;
      std::string name = ScanVarName();
      if (name.empty()) return Error("empty variable name");
      *term = QueryTerm::Variable(std::move(name));
      return Status::Ok();
    }
    if (c == '<') {
      size_t end = text_.find('>', pos_);
      if (end == std::string_view::npos) return Error("unterminated IRI");
      *term = QueryTerm::Constant(
          std::string(text_.substr(pos_, end - pos_ + 1)));
      pos_ = end + 1;
      return Status::Ok();
    }
    if (c == '"') {
      if (position != 2) return Error("literal allowed only as object");
      size_t i = pos_ + 1;
      while (i < text_.size()) {
        if (text_[i] == '\\') {
          i += 2;
          continue;
        }
        if (text_[i] == '"') break;
        ++i;
      }
      if (i >= text_.size()) return Error("unterminated literal");
      ++i;  // past closing quote
      if (i < text_.size() && text_[i] == '@') {
        ++i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '-')) {
          ++i;
        }
      } else if (i + 1 < text_.size() && text_[i] == '^' &&
                 text_[i + 1] == '^') {
        i += 2;
        if (i >= text_.size() || text_[i] != '<') {
          return Error("malformed datatype IRI");
        }
        size_t end = text_.find('>', i);
        if (end == std::string_view::npos) {
          return Error("unterminated datatype IRI");
        }
        i = end + 1;
      }
      *term = QueryTerm::Constant(std::string(text_.substr(pos_, i - pos_)));
      pos_ = i;
      return Status::Ok();
    }
    if (c == '_' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
      if (position == 1) return Error("blank node not allowed as predicate");
      size_t i = pos_ + 2;
      while (i < text_.size() && !std::isspace(static_cast<unsigned char>(
                                     text_[i])) &&
             text_[i] != '.') {
        ++i;
      }
      *term = QueryTerm::Constant(std::string(text_.substr(pos_, i - pos_)));
      pos_ = i;
      return Status::Ok();
    }
    // 'a' keyword (predicate position only) or prefixed name pfx:local.
    if (position == 1 && c == 'a') {
      size_t after = pos_ + 1;
      if (after >= text_.size() ||
          std::isspace(static_cast<unsigned char>(text_[after]))) {
        ++pos_;
        *term = QueryTerm::Constant(std::string(kRdfType));
        return Status::Ok();
      }
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == ':') {
      size_t start = pos_;
      while (!AtEnd() && Peek() != ':') {
        char pc = Peek();
        if (!std::isalnum(static_cast<unsigned char>(pc)) && pc != '_' &&
            pc != '-' && pc != '.') {
          return Error("malformed prefixed name");
        }
        ++pos_;
      }
      if (AtEnd()) return Error("malformed prefixed name (missing ':')");
      std::string prefix(text_.substr(start, pos_ - start));
      ++pos_;  // ':'
      size_t local_start = pos_;
      while (!AtEnd()) {
        char pc = Peek();
        if (std::isalnum(static_cast<unsigned char>(pc)) || pc == '_' ||
            pc == '-') {
          ++pos_;
        } else {
          break;
        }
      }
      auto it = prefixes_.find(prefix);
      if (it == prefixes_.end()) {
        return Error("unknown prefix '" + prefix + ":'");
      }
      std::string iri = "<" + it->second +
                        std::string(text_.substr(local_start,
                                                 pos_ - local_start)) +
                        ">";
      *term = QueryTerm::Constant(std::move(iri));
      return Status::Ok();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }


  std::string_view text_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
  QueryGraphBuilder builder_;
};

}  // namespace

Result<QueryGraph> SparqlParser::Parse(std::string_view text) {
  return ParserImpl(text).Parse();
}

}  // namespace mpc::sparql

#ifndef MPC_SPARQL_QUERY_GRAPH_H_
#define MPC_SPARQL_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/types.h"

namespace mpc::sparql {

/// A term in a triple pattern: either a constant (IRI/literal, stored in
/// canonical N-Triples lexical form) or a variable (Definition 3.5's
/// V_Var / L_Var).
struct QueryTerm {
  enum class Kind : uint8_t { kConstant, kVariable };

  Kind kind = Kind::kConstant;
  /// Constant: canonical lexical form ("<http://...>", "\"lit\"").
  /// Variable: name without the '?' sigil.
  std::string text;
  /// Variables: dense per-query id, assigned by QueryGraphBuilder.
  uint32_t var_id = UINT32_MAX;

  bool is_variable() const { return kind == Kind::kVariable; }

  static QueryTerm Constant(std::string lexical) {
    QueryTerm t;
    t.kind = Kind::kConstant;
    t.text = std::move(lexical);
    return t;
  }
  static QueryTerm Variable(std::string name) {
    QueryTerm t;
    t.kind = Kind::kVariable;
    t.text = std::move(name);
    return t;
  }
};

/// One triple pattern (an edge of the query graph).
struct TriplePattern {
  QueryTerm subject;
  QueryTerm predicate;
  QueryTerm object;
};

/// A SPARQL BGP query represented as a graph (Definition 3.5): query
/// vertices are the distinct subject/object terms, edges are the triple
/// patterns. Vertex identity: variables by name, constants by lexical
/// form.
class QueryGraph {
 public:
  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  size_t num_patterns() const { return patterns_.size(); }

  /// All distinct variables (vertex and predicate position), by var_id.
  const std::vector<std::string>& variables() const { return variables_; }
  size_t num_variables() const { return variables_.size(); }

  /// SELECTed variable ids; empty means SELECT * (all variables).
  const std::vector<uint32_t>& projection() const { return projection_; }

  /// Number of distinct query vertices (subject/object terms).
  size_t num_vertices() const { return num_vertices_; }

  /// Query-vertex id of pattern i's subject/object, in [0, num_vertices).
  uint32_t SubjectVertex(size_t i) const { return subject_vertex_[i]; }
  uint32_t ObjectVertex(size_t i) const { return object_vertex_[i]; }

  /// True if any pattern has a variable predicate.
  bool has_variable_predicate() const { return has_variable_predicate_; }

  /// SELECT DISTINCT? (the engine's union semantics already deduplicate
  /// full rows; DISTINCT additionally applies to the projection).
  bool distinct() const { return distinct_; }

  /// LIMIT clause; SIZE_MAX when absent.
  size_t limit() const { return limit_; }

  /// Distinct constant predicate lexical forms used by the query.
  std::vector<std::string> ConstantPredicates() const;

  /// Serializes back to SPARQL text (for logging and tests).
  std::string ToString() const;

 private:
  friend class QueryGraphBuilder;

  std::vector<TriplePattern> patterns_;
  std::vector<std::string> variables_;
  std::vector<uint32_t> projection_;
  std::vector<uint32_t> subject_vertex_;
  std::vector<uint32_t> object_vertex_;
  size_t num_vertices_ = 0;
  bool has_variable_predicate_ = false;
  bool distinct_ = false;
  size_t limit_ = SIZE_MAX;
};

/// Assembles a QueryGraph from patterns, assigning variable ids and query
/// vertex ids. Rejects queries where one variable appears in both a
/// predicate and a subject/object position (unsupported — the paper's
/// workloads never do this, and the two positions draw from different
/// dictionaries here).
class QueryGraphBuilder {
 public:
  QueryGraphBuilder& Add(QueryTerm subject, QueryTerm predicate,
                         QueryTerm object);

  /// Convenience for tests/generators: each string is "?name" for a
  /// variable or a canonical lexical form for a constant.
  QueryGraphBuilder& AddPattern(const std::string& subject,
                                const std::string& predicate,
                                const std::string& object);

  /// Restricts the projection; call once per variable. Unknown names are
  /// rejected at Build().
  QueryGraphBuilder& Select(const std::string& var_name);

  QueryGraphBuilder& Distinct(bool distinct = true);
  QueryGraphBuilder& Limit(size_t limit);

  Result<QueryGraph> Build();

 private:
  std::vector<TriplePattern> patterns_;
  std::vector<std::string> selected_;
  bool distinct_ = false;
  size_t limit_ = SIZE_MAX;
};

/// Parses "?name" / lexical-form shorthand used by AddPattern.
QueryTerm ParseTermShorthand(const std::string& text);

/// Builds a standalone QueryGraph from a subset of `query`'s patterns
/// (e.g. one subquery of an Algorithm 2 decomposition). Variable ids and
/// query-vertex ids are re-assigned densely within the extracted query;
/// variable *names* are preserved, so bindings can be correlated by name.
QueryGraph ExtractSubquery(const QueryGraph& query,
                           const std::vector<size_t>& pattern_indices);

}  // namespace mpc::sparql

#endif  // MPC_SPARQL_QUERY_GRAPH_H_

#ifndef MPC_SPARQL_PARSER_H_
#define MPC_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/query_graph.h"

namespace mpc::sparql {

/// Recursive-descent parser for the SPARQL BGP fragment the paper's
/// evaluation uses (Definition 3.5):
///
///   [PREFIX pfx: <iri>]*
///   SELECT (?var+ | *) WHERE { triple-pattern ('.' triple-pattern)* '.'? }
///
/// Terms: variables (?x / $x), IRIs (<...>), prefixed names (pfx:local),
/// literals with optional @lang / ^^<datatype>, and the 'a' keyword for
/// rdf:type. FILTER / OPTIONAL / UNION are out of scope — the paper
/// studies BGP queries only.
class SparqlParser {
 public:
  /// Parses `text` into a QueryGraph.
  static Result<QueryGraph> Parse(std::string_view text);
};

}  // namespace mpc::sparql

#endif  // MPC_SPARQL_PARSER_H_

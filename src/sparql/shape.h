#ifndef MPC_SPARQL_SHAPE_H_
#define MPC_SPARQL_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sparql/query_graph.h"

namespace mpc::sparql {

/// True if the query is a star: one central query vertex incident to
/// every edge (the only class existing vertex-disjoint approaches can
/// execute independently, per Section I-A). Single-pattern queries are
/// stars. Self-loop-only queries count (the single vertex is central).
bool IsStarQuery(const QueryGraph& query);

/// True if the query graph (all patterns as undirected edges over query
/// vertices) is weakly connected. The paper assumes connected queries;
/// generators and the executor check with this.
bool IsWeaklyConnected(const QueryGraph& query);

/// Weakly-connected-component decomposition of the query *after removing*
/// the patterns flagged in `removed` (size num_patterns). Returns, for
/// each query vertex, its component id in [0, num_components); vertices
/// isolated by the removal form their own singleton components.
struct QueryComponents {
  std::vector<uint32_t> vertex_component;  // size num_vertices
  uint32_t num_components = 0;
  /// Vertices per component.
  std::vector<uint32_t> component_size;
};

QueryComponents DecomposeAfterRemoval(const QueryGraph& query,
                                      const std::vector<bool>& removed);

/// A canonical key for the query's *shape*: variables are renamed by
/// first occurrence (in pattern order, S-P-O within a pattern), constants
/// kept verbatim, plus the projection/DISTINCT/LIMIT modifiers. Two
/// queries with equal keys classify and decompose identically against any
/// fixed partitioning — classification depends only on the multiset of
/// constant predicates / variable-predicate positions and decomposition
/// only on the vertex structure, both of which the key fixes. This is the
/// QueryService plan-cache key.
std::string CanonicalShapeKey(const QueryGraph& query);

}  // namespace mpc::sparql

#endif  // MPC_SPARQL_SHAPE_H_

#include "sparql/query_graph.h"

#include <algorithm>
#include <unordered_map>

namespace mpc::sparql {

std::vector<std::string> QueryGraph::ConstantPredicates() const {
  std::vector<std::string> result;
  for (const TriplePattern& p : patterns_) {
    if (!p.predicate.is_variable()) result.push_back(p.predicate.text);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::string QueryGraph::ToString() const {
  std::string out = "SELECT";
  if (distinct_) out += " DISTINCT";
  if (projection_.empty()) {
    out += " *";
  } else {
    for (uint32_t v : projection_) {
      out += " ?";
      out += variables_[v];
    }
  }
  out += " WHERE {";
  auto term = [&](const QueryTerm& t) {
    return t.is_variable() ? "?" + t.text : t.text;
  };
  for (const TriplePattern& p : patterns_) {
    out += " " + term(p.subject) + " " + term(p.predicate) + " " +
           term(p.object) + " .";
  }
  out += " }";
  if (limit_ != SIZE_MAX) out += " LIMIT " + std::to_string(limit_);
  return out;
}

QueryTerm ParseTermShorthand(const std::string& text) {
  if (!text.empty() && (text[0] == '?' || text[0] == '$')) {
    return QueryTerm::Variable(text.substr(1));
  }
  return QueryTerm::Constant(text);
}

QueryGraphBuilder& QueryGraphBuilder::Add(QueryTerm subject,
                                          QueryTerm predicate,
                                          QueryTerm object) {
  patterns_.push_back({std::move(subject), std::move(predicate),
                       std::move(object)});
  return *this;
}

QueryGraphBuilder& QueryGraphBuilder::AddPattern(const std::string& subject,
                                                 const std::string& predicate,
                                                 const std::string& object) {
  return Add(ParseTermShorthand(subject), ParseTermShorthand(predicate),
             ParseTermShorthand(object));
}

QueryGraphBuilder& QueryGraphBuilder::Select(const std::string& var_name) {
  selected_.push_back(var_name);
  return *this;
}

QueryGraphBuilder& QueryGraphBuilder::Distinct(bool distinct) {
  distinct_ = distinct;
  return *this;
}

QueryGraphBuilder& QueryGraphBuilder::Limit(size_t limit) {
  limit_ = limit;
  return *this;
}

Result<QueryGraph> QueryGraphBuilder::Build() {
  if (patterns_.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }

  QueryGraph query;
  query.patterns_ = std::move(patterns_);
  query.distinct_ = distinct_;
  query.limit_ = limit_;
  patterns_.clear();

  // Assign variable ids; track which positions each variable occupies.
  std::unordered_map<std::string, uint32_t> var_ids;
  std::unordered_map<std::string, bool> var_in_predicate;
  std::unordered_map<std::string, bool> var_in_vertex;
  auto intern_var = [&](QueryTerm& term, bool predicate_position) {
    auto [it, inserted] =
        var_ids.emplace(term.text, static_cast<uint32_t>(var_ids.size()));
    if (inserted) query.variables_.push_back(term.text);
    term.var_id = it->second;
    (predicate_position ? var_in_predicate : var_in_vertex)[term.text] = true;
  };

  // Assign query-vertex ids: variables by name, constants by lexical form.
  std::unordered_map<std::string, uint32_t> vertex_ids;
  auto vertex_id = [&](const QueryTerm& term) {
    // Prefix disambiguates a variable named "x" from a constant "x".
    std::string key =
        (term.is_variable() ? "?" : "=") + term.text;
    auto [it, inserted] =
        vertex_ids.emplace(std::move(key),
                           static_cast<uint32_t>(vertex_ids.size()));
    return it->second;
  };

  for (TriplePattern& p : query.patterns_) {
    if (p.subject.is_variable()) intern_var(p.subject, false);
    if (p.predicate.is_variable()) {
      intern_var(p.predicate, true);
      query.has_variable_predicate_ = true;
    }
    if (p.object.is_variable()) intern_var(p.object, false);
    query.subject_vertex_.push_back(vertex_id(p.subject));
    query.object_vertex_.push_back(vertex_id(p.object));
  }
  query.num_vertices_ = vertex_ids.size();

  for (const auto& [name, in_pred] : var_in_predicate) {
    if (in_pred && var_in_vertex.count(name) && var_in_vertex.at(name)) {
      return Status::Unsupported(
          "variable ?" + name +
          " used in both predicate and subject/object position");
    }
  }

  for (const std::string& name : selected_) {
    auto it = var_ids.find(name);
    if (it == var_ids.end()) {
      return Status::InvalidArgument("SELECT of unknown variable ?" + name);
    }
    query.projection_.push_back(it->second);
  }
  selected_.clear();
  return query;
}

QueryGraph ExtractSubquery(const QueryGraph& query,
                           const std::vector<size_t>& pattern_indices) {
  QueryGraphBuilder builder;
  for (size_t idx : pattern_indices) {
    const TriplePattern& p = query.patterns()[idx];
    builder.Add(p.subject, p.predicate, p.object);
  }
  Result<QueryGraph> result = builder.Build();
  // A subset of a valid query is always valid (no new variables, and a
  // predicate/vertex variable clash would already exist in the parent).
  return result.ok() ? std::move(result).value() : QueryGraph{};
}

}  // namespace mpc::sparql

#include "sparql/shape.h"

#include <numeric>

namespace mpc::sparql {

namespace {

/// Minimal union-find over query vertices (queries are tiny; no rank
/// needed).
class TinyForest {
 public:
  explicit TinyForest(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

bool IsStarQuery(const QueryGraph& query) {
  if (query.num_patterns() == 0) return false;
  // Candidate centers: both endpoints of the first pattern.
  for (uint32_t center : {query.SubjectVertex(0), query.ObjectVertex(0)}) {
    bool ok = true;
    for (size_t i = 0; i < query.num_patterns(); ++i) {
      if (query.SubjectVertex(i) != center &&
          query.ObjectVertex(i) != center) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool IsWeaklyConnected(const QueryGraph& query) {
  std::vector<bool> removed(query.num_patterns(), false);
  return DecomposeAfterRemoval(query, removed).num_components == 1;
}

QueryComponents DecomposeAfterRemoval(const QueryGraph& query,
                                      const std::vector<bool>& removed) {
  TinyForest forest(query.num_vertices());
  for (size_t i = 0; i < query.num_patterns(); ++i) {
    if (removed[i]) continue;
    forest.Union(query.SubjectVertex(i), query.ObjectVertex(i));
  }
  QueryComponents result;
  result.vertex_component.assign(query.num_vertices(), UINT32_MAX);
  std::vector<uint32_t> root_label(query.num_vertices(), UINT32_MAX);
  for (uint32_t v = 0; v < query.num_vertices(); ++v) {
    uint32_t root = forest.Find(v);
    if (root_label[root] == UINT32_MAX) {
      root_label[root] = result.num_components++;
      result.component_size.push_back(0);
    }
    result.vertex_component[v] = root_label[root];
    ++result.component_size[root_label[root]];
  }
  return result;
}

std::string CanonicalShapeKey(const QueryGraph& query) {
  // Variables renamed to _0, _1, ... by first occurrence in S-P-O order.
  std::vector<uint32_t> rename(query.num_variables(), UINT32_MAX);
  uint32_t next = 0;
  auto term_key = [&](const QueryTerm& term) -> std::string {
    if (!term.is_variable()) return "c:" + term.text;
    if (rename[term.var_id] == UINT32_MAX) rename[term.var_id] = next++;
    return "_" + std::to_string(rename[term.var_id]);
  };
  std::string key;
  key.reserve(64 * query.num_patterns());
  for (const TriplePattern& p : query.patterns()) {
    key += term_key(p.subject);
    key += ' ';
    key += term_key(p.predicate);
    key += ' ';
    key += term_key(p.object);
    key += '\n';
  }
  // Modifiers change the answer (not the plan), but keying them keeps
  // one cache usable for both plan and result lookups.
  key += "select:";
  if (query.projection().empty()) {
    key += '*';
  } else {
    for (uint32_t var : query.projection()) {
      if (rename[var] == UINT32_MAX) rename[var] = next++;
      key += " _" + std::to_string(rename[var]);
    }
  }
  if (query.distinct()) key += " distinct";
  if (query.limit() != SIZE_MAX) {
    key += " limit " + std::to_string(query.limit());
  }
  return key;
}

}  // namespace mpc::sparql

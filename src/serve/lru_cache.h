#ifndef MPC_SERVE_LRU_CACHE_H_
#define MPC_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace mpc::serve {

/// Plain string-keyed LRU map backing the QueryService's plan and result
/// caches. Not internally synchronized: the service guards each cache
/// with its own mutex and stores shared_ptr values, so an entry evicted
/// while a query still holds it simply outlives the cache slot.
template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the value and marks the key most-recently-used;
  /// default-constructed Value (a null shared_ptr for both caches) on
  /// miss or when the cache is disabled (capacity 0).
  Value Get(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return Value{};
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry past
  /// capacity. No-op when the cache is disabled.
  void Put(const std::string& key, Value value) {
    if (capacity_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
    if (map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::string, Value>> order_;
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      map_;
};

}  // namespace mpc::serve

#endif  // MPC_SERVE_LRU_CACHE_H_

#ifndef MPC_SERVE_SLOW_QUERY_LOG_H_
#define MPC_SERVE_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "exec/query_api.h"

namespace mpc::serve {

/// Bounded JSONL log of queries that blew a latency threshold, with the
/// merged per-query trace retained only for those queries. One line per
/// slow query:
///
///   {"latency_ms":..,"queue_wait_ms":..,"text":"..","shape_key":"..",
///    "plan":{"cls":"..","independent":..,"num_subqueries":..,
///            "plan_cache_hit":..,"result_cache_hit":..},
///    "complete":..,"completeness_bound":..,"rows":..,"error":"..",
///    "attempts":[{"site":..,"attempt":..,"start_us":..,"dur_us":..,
///                 "ok":..}],
///    "trace_id":..,"trace_file":".."}
///
/// `attempts` is the per-site timeline reconstructed from the query's
/// `exec.rpc.attempt` spans; `trace_file` is the Chrome-JSON merged
/// trace (coordinator + site-worker tracks), written only when the
/// query was traced. The log is size-bounded with a single rotation:
/// when it would exceed `max_bytes` the current file moves to
/// `<path>.old` and a fresh file starts — crash-safe and never more
/// than 2x the cap on disk.
class SlowQueryLog {
 public:
  struct Options {
    std::string path;
    /// Threshold (ms) a query's end-to-end latency must exceed.
    double threshold_ms = 0.0;
    size_t max_bytes = 4u << 20;
    /// Retain the merged Chrome-JSON trace for each slow query, as
    /// `<path>.trace.<trace_id>.json`.
    bool keep_traces = true;

    bool enabled() const { return threshold_ms > 0.0 && !path.empty(); }
  };

  explicit SlowQueryLog(Options options);

  /// Appends one entry if latency >= threshold (no-op otherwise).
  /// Thread-safe; called from serving workers after the query's span
  /// closed. `result` may be an error (failed queries can be slow too).
  void MaybeRecord(const exec::QueryRequest& request,
                   const Result<exec::QueryResponse>& result,
                   double latency_ms, double queue_wait_ms);

  const Options& options() const { return options_; }
  uint64_t entries_written() const { return entries_; }

 private:
  void AppendLocked(const std::string& line);

  Options options_;
  std::mutex mutex_;
  uint64_t entries_ = 0;
  size_t bytes_ = 0;
  bool sized_ = false;  // bytes_ initialized from an existing file
};

}  // namespace mpc::serve

#endif  // MPC_SERVE_SLOW_QUERY_LOG_H_

#include "serve/query_service.h"

#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioning.h"
#include "sparql/shape.h"

namespace mpc::serve {

namespace {

double ToMillis(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const ServingState> state,
                           QueryServiceOptions options)
    : options_(std::move(options)),
      state_(std::move(state)),
      plan_cache_(options_.plan_cache_capacity),
      result_cache_(options_.result_cache_capacity) {
  if (options_.slow_query.enabled()) {
    slow_log_ = std::make_unique<SlowQueryLog>(options_.slow_query);
  }
  const int workers = ResolveNumThreads(options_.num_workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

std::future<Result<exec::QueryResponse>> QueryService::Submit(
    exec::QueryRequest request) {
  Pending pending;
  pending.enqueued = Clock::now();
  if (request.options.deadline_ms > 0.0) {
    pending.has_deadline = true;
    pending.deadline =
        pending.enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                request.options.deadline_ms));
  }
  pending.request = std::move(request);
  std::future<Result<exec::QueryResponse>> future =
      pending.promise.get_future();

  auto& metrics = obs::MetricsRegistry::Default();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (options_.queue_capacity > 0 && admitting_ &&
      queue_.size() >= options_.queue_capacity) {
    if (options_.admission == QueryServiceOptions::Admission::kReject) {
      lock.unlock();
      metrics.CounterRef("serve.rejected").Inc();
      pending.promise.set_value(exec::AttachQueryText(
          Status::Unavailable(
              "admission queue full (capacity " +
              std::to_string(options_.queue_capacity) + ")"),
          pending.request.text));
      return future;
    }
    space_available_.wait(lock, [this] {
      return !admitting_ || queue_.size() < options_.queue_capacity;
    });
  }
  if (!admitting_) {
    lock.unlock();
    metrics.CounterRef("serve.rejected").Inc();
    pending.promise.set_value(exec::AttachQueryText(
        Status::Unavailable("QueryService is shut down"),
        pending.request.text));
    return future;
  }
  queue_.push_back(std::move(pending));
  const double depth = static_cast<double>(queue_.size());
  lock.unlock();
  metrics.CounterRef("serve.admitted").Inc();
  metrics.GaugeRef("serve.queue_depth").Set(depth);
  work_available_.notify_one();
  return future;
}

Result<exec::QueryResponse> QueryService::Execute(exec::QueryRequest request) {
  return Submit(std::move(request)).get();
}

void QueryService::Publish(std::shared_ptr<const ServingState> state) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  state_ = std::move(state);
}

std::shared_ptr<const ServingState> QueryService::state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    admitting_ = false;
    stop_workers_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void QueryService::WorkerLoop() {
  auto& metrics = obs::MetricsRegistry::Default();
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      work_available_.wait(
          lock, [this] { return stop_workers_ || !queue_.empty(); });
      // Drain before stopping: every admitted query gets an answer.
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
      metrics.GaugeRef("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    space_available_.notify_one();

    const Clock::time_point dequeued = Clock::now();
    const double queue_wait = ToMillis(dequeued - pending.enqueued);
    Result<exec::QueryResponse> result = [&]() -> Result<exec::QueryResponse> {
      if (pending.has_deadline && dequeued >= pending.deadline) {
        metrics.CounterRef("serve.deadline_expired").Inc();
        return exec::AttachQueryText(
            Status::DeadlineExceeded(
                "deadline (" +
                std::to_string(pending.request.options.deadline_ms) +
                " ms) expired after " + std::to_string(queue_wait) +
                " ms in admission queue"),
            pending.request.text);
      }
      if (options_.pre_execute_hook) options_.pre_execute_hook(pending.request);
      return Run(pending.request, queue_wait);
    }();

    const double latency = ToMillis(Clock::now() - pending.enqueued);
    metrics.CounterRef("serve.queries").Inc();
    metrics
        .HistogramRef("serve.latency_ms", obs::DefaultLatencyBoundsMs())
        .Observe(latency);
    metrics
        .HistogramRef("serve.queue_wait_ms", obs::DefaultLatencyBoundsMs())
        .Observe(queue_wait);
    // After Run returned the query's serve.query span is closed, so the
    // slow log sees the complete trace (parent-edge closure included).
    if (slow_log_ != nullptr) {
      slow_log_->MaybeRecord(pending.request, result, latency, queue_wait);
    }
    pending.promise.set_value(std::move(result));
  }
}

Result<exec::QueryResponse> QueryService::Run(
    const exec::QueryRequest& request, double queue_wait_millis) {
  auto& metrics = obs::MetricsRegistry::Default();
  // One snapshot for the whole query: cache decisions and execution all
  // see the same generation, whatever Publish does concurrently.
  std::shared_ptr<const ServingState> state = this->state();

  Result<sparql::QueryGraph> query = exec::ResolveRequestQuery(request);
  if (!query.ok()) return query.status();
  // Observe before the cache lookups: a cache hit is workload too, and
  // the weight accumulation must see the real query mix.
  if (options_.query_observer) options_.query_observer(*query);

  obs::TraceSpan span("serve.query");
  span.Attr("generation", state->generation());
  if (!request.options.trace_tag.empty()) {
    span.Attr("tag", request.options.trace_tag);
  }
  // Re-install the ambient context with the caller's tag so everything
  // below serve.query — including the wire context shipped to remote
  // site workers — carries it. No-op with tracing disabled (the ambient
  // context is empty and stays empty).
  obs::TraceContext tagged = obs::CurrentTraceContext();
  tagged.query_tag = request.options.trace_tag;
  obs::ScopedTraceContext tag_scope(tagged);

  const bool gstored =
      request.options.strategy == exec::ExecStrategy::kGstored;
  if (gstored && !state->has_gstored()) {
    return Status::Unsupported(
        "gstored strategy needs in-process site stores; this state serves "
        "a remote cluster (query: " + request.text + ")");
  }
  // Exact-query key; ToString() canonicalizes whitespace and term
  // spelling, so textual variants of one query share an entry. The
  // strategy is part of the key because the two runtimes report
  // different stats for the same bindings.
  const std::string result_key =
      std::string(exec::ExecStrategyName(request.options.strategy)) + "\n" +
      query->ToString();
  if (options_.result_cache_capacity > 0) {
    std::shared_ptr<const exec::QueryResponse> cached;
    {
      std::lock_guard<std::mutex> lock(result_cache_mutex_);
      cached = result_cache_.Get(result_key);
    }
    if (cached != nullptr && cached->generation == state->generation()) {
      metrics.CounterRef("serve.result_cache.hits").Inc();
      exec::QueryResponse response = *cached;  // copy: caller owns rows
      response.stats.result_cache_hit = true;
      response.stats.queue_wait_millis = queue_wait_millis;
      response.stats.trace_id = tagged.trace_id;
      span.Attr("result_cache", "hit");
      return response;
    }
    metrics.CounterRef("serve.result_cache.misses").Inc();
  }

  // Plan cache: vertex-disjoint DistributedExecutor queries only (VP
  // planning is per-pattern and trivial; gStoreD has no shareable plan).
  std::shared_ptr<const exec::QueryPlan> plan;
  bool plan_was_cached = false;
  const bool plannable =
      !gstored && state->cluster().partitioning().kind() ==
                      partition::PartitioningKind::kVertexDisjoint;
  if (plannable && options_.plan_cache_capacity > 0) {
    const std::string shape_key = sparql::CanonicalShapeKey(*query);
    std::shared_ptr<const PlanEntry> entry;
    {
      std::lock_guard<std::mutex> lock(plan_cache_mutex_);
      entry = plan_cache_.Get(shape_key);
    }
    if (entry != nullptr && entry->generation == state->generation()) {
      plan = entry->plan;
      plan_was_cached = true;
      metrics.CounterRef("serve.plan_cache.hits").Inc();
    } else {
      metrics.CounterRef("serve.plan_cache.misses").Inc();
      auto fresh = std::make_shared<PlanEntry>();
      fresh->generation = state->generation();
      fresh->plan = std::make_shared<const exec::QueryPlan>(exec::PlanQuery(
          *query, state->cluster().partitioning(), state->graph()));
      plan = fresh->plan;
      std::lock_guard<std::mutex> lock(plan_cache_mutex_);
      plan_cache_.Put(shape_key, std::move(fresh));
    }
  }

  // Execute on the snapshot. The request is re-issued with the parsed
  // form attached so the executor does not re-parse; the original text
  // rides along for error messages.
  exec::QueryRequest resolved;
  resolved.query = std::move(*query);
  resolved.text = request.text;
  resolved.options = request.options;
  Result<exec::QueryResponse> response =
      gstored ? state->gstored().Execute(resolved)
              : state->distributed().Execute(resolved, plan.get());
  if (!response.ok()) return response.status();
  // The executor flags any externally supplied plan as a cache hit; keep
  // the flag honest for plans this call just computed and inserted.
  response->stats.plan_cache_hit = plan_was_cached;
  response->stats.queue_wait_millis = queue_wait_millis;
  // Stamp this serving's own trace id (the gstored path and cached
  // executions would otherwise carry a stale or zero id).
  response->stats.trace_id = tagged.trace_id;

  // Cache only answers that are provably a pure function of (query,
  // generation): independently executable (IEQ — no decomposition whose
  // policy knobs could differ) and complete (no best-effort partial
  // answers).
  if (options_.result_cache_capacity > 0 && response->stats.independent &&
      response->stats.complete) {
    auto entry = std::make_shared<const exec::QueryResponse>(*response);
    std::lock_guard<std::mutex> lock(result_cache_mutex_);
    result_cache_.Put(result_key, std::move(entry));
  }
  span.Attr("rows", static_cast<uint64_t>(response->bindings.num_rows()))
      .Attr("plan_cache", plan_was_cached ? "hit" : "miss");
  return response;
}

}  // namespace mpc::serve

#ifndef MPC_SERVE_ADMIN_H_
#define MPC_SERVE_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mpc::serve {

/// Admin RPC frame types (the serving introspection protocol, distinct
/// from the site-eval protocol in exec/rpc_protocol.h but sharing the
/// same framed transport and version check).
inline constexpr uint16_t kMsgStatsRequest = net::kFirstAppFrameType + 8;
inline constexpr uint16_t kMsgStatsReply = net::kFirstAppFrameType + 9;

/// Live-introspection endpoint: a UNIX-socket listener that answers
/// StatsRequest frames with the current windowed stats JSON (whatever
/// the supplied callback renders — in `mpc serve` that is
/// obs::Snapshotter::StatsJson()). `mpc top` is the client.
///
/// One background thread; connections are served one at a time (an
/// admin socket has a human on the other end, not a fleet). A client
/// may hold the connection and poll with repeated StatsRequests — the
/// refreshing `mpc top` mode does.
class AdminServer {
 public:
  /// `stats_json` is called on the server thread for every request; it
  /// must be thread-safe against the serving workers.
  AdminServer(std::string socket_path, std::function<std::string()> stats_json);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds the socket and starts the accept loop. IoError if the path
  /// cannot be bound.
  Status Start();
  /// Stops the loop and joins the thread; idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  std::string socket_path_;
  std::function<std::string()> stats_json_;
  net::Socket listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
};

/// One-shot client: connects to an AdminServer, sends a StatsRequest,
/// returns the stats JSON. Unavailable when nothing listens at `path`.
Result<std::string> FetchStats(const std::string& path, double timeout_ms);

}  // namespace mpc::serve

#endif  // MPC_SERVE_ADMIN_H_

#include "serve/slow_query_log.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/query_classifier.h"
#include "obs/trace.h"
#include "sparql/shape.h"

namespace mpc::serve {

namespace {

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out << v;
  return out.str();
}

/// The per-site attempt timeline: every exec.rpc.attempt span recorded
/// under this query's trace id, in start order (CollectTrace's order
/// within a track; cross-track order is by pid/tid, which is fine for a
/// log a human reads sorted anyway).
std::string AttemptsJson(const std::vector<obs::TraceEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const obs::TraceEvent& e : events) {
    if (e.name != "exec.rpc.attempt") continue;
    if (!first) out += ",";
    first = false;
    out += "{\"start_us\":" + JsonNum(e.start_us) +
           ",\"dur_us\":" + JsonNum(e.dur_us);
    bool ok = true;
    for (const obs::TraceAttr& a : e.attrs) {
      if (a.key == "site" || a.key == "attempt" || a.key == "rows") {
        out += "," + JsonStr(a.key) + ":" + a.value.ToJson();
      } else if (a.key == "error") {
        ok = false;
        out += ",\"error\":" + a.value.ToJson();
      }
    }
    out += std::string(",\"ok\":") + (ok ? "true" : "false") + "}";
  }
  out += "]";
  return out;
}

}  // namespace

SlowQueryLog::SlowQueryLog(Options options) : options_(std::move(options)) {}

void SlowQueryLog::MaybeRecord(const exec::QueryRequest& request,
                               const Result<exec::QueryResponse>& result,
                               double latency_ms, double queue_wait_ms) {
  if (!options_.enabled() || latency_ms < options_.threshold_ms) return;

  std::string line = "{";
  line += "\"latency_ms\":" + JsonNum(latency_ms);
  line += ",\"queue_wait_ms\":" + JsonNum(queue_wait_ms);
  line += ",\"text\":" + JsonStr(request.text);
  // Recomputing the canonical shape key re-parses the query, but only
  // on the slow path — the fast path never pays for the log.
  Result<sparql::QueryGraph> query = exec::ResolveRequestQuery(request);
  if (query.ok()) {
    line += ",\"shape_key\":" + JsonStr(sparql::CanonicalShapeKey(*query));
  }
  uint64_t trace_id = 0;
  if (result.ok()) {
    const exec::ExecutionStats& stats = result->stats;
    trace_id = stats.trace_id;
    line += std::string(",\"plan\":{\"cls\":") +
            JsonStr(exec::IeqClassName(stats.cls)) +
            ",\"independent\":" + (stats.independent ? "true" : "false") +
            ",\"num_subqueries\":" + std::to_string(stats.num_subqueries) +
            ",\"plan_cache_hit\":" + (stats.plan_cache_hit ? "true" : "false") +
            ",\"result_cache_hit\":" +
            (stats.result_cache_hit ? "true" : "false") + "}";
    line += std::string(",\"complete\":") + (stats.complete ? "true" : "false");
    line += ",\"completeness_bound\":" + JsonNum(stats.completeness_bound);
    line += ",\"rows\":" + std::to_string(result->bindings.num_rows());
    line += ",\"retries\":" + std::to_string(stats.retries);
    line += ",\"sites_failed\":" + std::to_string(stats.sites_failed);
  } else {
    line += ",\"error\":" + JsonStr(result.status().ToString());
  }
  if (trace_id != 0) {
    const std::vector<obs::TraceEvent> events =
        obs::ExtractTraceForId(trace_id);
    line += ",\"trace_id\":" + std::to_string(trace_id);
    line += ",\"attempts\":" + AttemptsJson(events);
    if (options_.keep_traces) {
      line += ",\"trace_file\":" +
              JsonStr(options_.path + ".trace." + std::to_string(trace_id) +
                      ".json");
    }
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  if (trace_id != 0 && options_.keep_traces) {
    const std::string trace_path =
        options_.path + ".trace." + std::to_string(trace_id) + ".json";
    // Retained only for slow queries; a failed write is not worth
    // failing the query path over.
    (void)obs::WriteTraceForId(trace_id, trace_path);
  }
  AppendLocked(line);
}

void SlowQueryLog::AppendLocked(const std::string& line) {
  if (!sized_) {
    struct stat st;
    bytes_ = ::stat(options_.path.c_str(), &st) == 0
                 ? static_cast<size_t>(st.st_size)
                 : 0;
    sized_ = true;
  }
  if (bytes_ > 0 && bytes_ + line.size() > options_.max_bytes) {
    // Single rotation keeps the on-disk footprint <= 2x the cap while
    // the freshest entries always survive.
    (void)std::rename(options_.path.c_str(),
                      (options_.path + ".old").c_str());
    bytes_ = 0;
  }
  std::ofstream out(options_.path, std::ios::binary | std::ios::app);
  if (!out) return;
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  bytes_ += line.size();
  ++entries_;
}

}  // namespace mpc::serve

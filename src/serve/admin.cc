#include "serve/admin.h"

#include <utility>

namespace mpc::serve {

AdminServer::AdminServer(std::string socket_path,
                         std::function<std::string()> stats_json)
    : socket_path_(std::move(socket_path)), stats_json_(std::move(stats_json)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (running_.load(std::memory_order_relaxed)) return Status::Ok();
  Result<net::Socket> listener = net::Socket::Listen(socket_path_);
  MPC_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void AdminServer::Stop() {
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.Close();
}

void AdminServer::Loop() {
  while (running_.load(std::memory_order_acquire)) {
    // Short accept timeout doubles as the stop-poll interval.
    Result<net::Socket> conn = listener_.Accept(100.0);
    if (!conn.ok()) continue;
    // Serve this client until it leaves or misbehaves; a held
    // connection with repeated requests is the refreshing-top pattern.
    while (running_.load(std::memory_order_acquire)) {
      Result<net::Frame> frame = net::ReadFrame(*conn, 1000.0);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kDeadlineExceeded) continue;
        break;  // EOF, torn stream, version mismatch: drop the client
      }
      if (frame->type != kMsgStatsRequest) break;
      requests_.fetch_add(1, std::memory_order_relaxed);
      const std::string stats = stats_json_ ? stats_json_() : "{}";
      if (!net::WriteFrame(*conn, kMsgStatsReply, stats).ok()) break;
    }
  }
}

Result<std::string> FetchStats(const std::string& path, double timeout_ms) {
  Result<net::Socket> conn = net::Socket::Connect(path);
  MPC_RETURN_IF_ERROR(conn.status());
  MPC_RETURN_IF_ERROR(net::WriteFrame(*conn, kMsgStatsRequest, ""));
  Result<net::Frame> reply = net::ReadFrame(*conn, timeout_ms);
  MPC_RETURN_IF_ERROR(reply.status());
  if (reply->type != kMsgStatsReply) {
    return Status::ParseError("unexpected admin reply frame type " +
                              std::to_string(reply->type));
  }
  return std::move(reply->payload);
}

}  // namespace mpc::serve

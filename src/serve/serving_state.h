#ifndef MPC_SERVE_SERVING_STATE_H_
#define MPC_SERVE_SERVING_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dynamic/incremental_maintainer.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "exec/gstored_executor.h"
#include "partition/partitioning.h"
#include "rdf/graph.h"

namespace mpc::serve {

struct ServingStateOptions {
  /// Per-query executor policy (network model, pruning, faults, ...).
  /// `generation` is overwritten with the snapshot's generation, and
  /// num_threads should stay at its default of 1 when the state serves a
  /// QueryService pool: with N serving workers, N concurrent queries
  /// already saturate N cores, so serial intra-query evaluation is what
  /// makes the two levels share the machine instead of multiplying on it.
  exec::ExecutorOptions executor;
  /// Worker threads for the one-off Cluster::Build (site index
  /// construction), not for query evaluation. 0 = hardware_concurrency.
  int build_threads = 0;
  /// Immutable per-site base sources (opened `mpc pack` segments, one
  /// per site). When set, Capture composes each site as
  /// base + delta overlay from the maintainer's add/tombstone sets
  /// instead of rebuilding in-memory indexes — the out-of-core dynamic
  /// path. Falls back to the full rebuild whenever the bases no longer
  /// describe the maintained partitioning (a repartition happened, or k
  /// differs). Build/WrapBackend ignore it.
  std::vector<std::shared_ptr<const store::TripleSource>> base_sources;
};

/// An immutable, self-contained snapshot of everything needed to answer
/// queries: a private copy of the graph (dictionaries), the compacted
/// partitioning materialized into a Cluster, and both executors, all
/// stamped with the generation they were captured at.
///
/// This is the bridge between the single-writer IncrementalMaintainer
/// and a many-reader QueryService: the update thread captures a state
/// after applying updates and Publishes it; queries in flight keep the
/// previous snapshot alive through their shared_ptr, so the writer never
/// blocks on readers and readers never observe a half-applied batch.
class ServingState {
 public:
  /// Snapshots a live maintainer (single-writer contract: call from the
  /// maintainer's update thread only — this reads LiveTriples through
  /// CompactPartitioning and clones the graph).
  static std::shared_ptr<const ServingState> Capture(
      dynamic::IncrementalMaintainer& maintainer,
      const ServingStateOptions& options = ServingStateOptions());

  /// Builds a state from explicit parts — the static-cluster entry point
  /// (generation 0 unless the caller says otherwise). Materializes the
  /// partitioning into an in-process Cluster.
  static std::shared_ptr<const ServingState> Build(
      rdf::RdfGraph graph, partition::Partitioning partitioning,
      uint64_t generation = 0,
      const ServingStateOptions& options = ServingStateOptions());

  /// Wraps an already-started backend (typically a RemoteCluster over
  /// `mpc site` worker processes) instead of building an in-process
  /// simulator. The gStoreD baseline needs direct store access and is
  /// unavailable over RPC, so has_gstored() is false for these states.
  static std::shared_ptr<const ServingState> WrapBackend(
      rdf::RdfGraph graph, std::unique_ptr<exec::ClusterBackend> backend,
      uint64_t generation = 0,
      const ServingStateOptions& options = ServingStateOptions());

  ServingState(const ServingState&) = delete;
  ServingState& operator=(const ServingState&) = delete;

  uint64_t generation() const { return generation_; }
  const rdf::RdfGraph& graph() const { return graph_; }
  const exec::ClusterBackend& cluster() const { return *cluster_; }
  const exec::DistributedExecutor& distributed() const {
    return *distributed_;
  }
  /// False for remote backends — gStoreD evaluates against in-process
  /// stores. Callers must check before gstored().
  bool has_gstored() const { return gstored_ != nullptr; }
  /// Only usable on vertex-disjoint partitionings (its Execute checks)
  /// and only when has_gstored().
  const exec::GStoredExecutor& gstored() const { return *gstored_; }

 private:
  ServingState(rdf::RdfGraph graph, std::unique_ptr<exec::ClusterBackend> backend,
               uint64_t generation, const ServingStateOptions& options);

  rdf::RdfGraph graph_;
  /// Heap-held: RemoteCluster is neither copyable nor movable (it owns
  /// live sockets and a supervisor), and executors hold references.
  std::unique_ptr<exec::ClusterBackend> cluster_;
  uint64_t generation_;
  /// unique_ptrs because the executors hold references into graph_ /
  /// *cluster_, which are stable only once this object is in place (it is
  /// always heap-allocated via the factories).
  std::unique_ptr<exec::DistributedExecutor> distributed_;
  std::unique_ptr<exec::GStoredExecutor> gstored_;
};

}  // namespace mpc::serve

#endif  // MPC_SERVE_SERVING_STATE_H_

#ifndef MPC_SERVE_QUERY_SERVICE_H_
#define MPC_SERVE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/query_api.h"
#include "serve/lru_cache.h"
#include "serve/serving_state.h"
#include "serve/slow_query_log.h"

namespace mpc::serve {

struct QueryServiceOptions {
  /// Dedicated serving workers — the inter-query parallelism. Intra-query
  /// evaluation stays at the executors' num_threads (default 1, see
  /// ServingStateOptions), so total parallelism is exactly this many
  /// cores rather than workers x intra-query threads. 0 =
  /// hardware_concurrency.
  int num_workers = 4;
  /// Bound on queries admitted but not yet finished dequeuing. 0 =
  /// unbounded (admission never rejects or blocks).
  size_t queue_capacity = 1024;
  enum class Admission {
    /// A full queue fails the submission immediately with Unavailable —
    /// the backpressure signal for open-loop producers.
    kReject,
    /// A full queue blocks Submit until a worker makes room — the
    /// closed-loop flavor. Per-query deadlines are still only enforced
    /// at dequeue, so a blocked submission can outwait its own deadline
    /// and then fail with DeadlineExceeded.
    kBlock,
  };
  Admission admission = Admission::kReject;
  /// Entries in the shape-keyed plan cache (0 disables).
  size_t plan_cache_capacity = 256;
  /// Entries in the result cache for independently-executable, complete
  /// answers (0 disables).
  size_t result_cache_capacity = 1024;
  /// Slow-query log (disabled unless both path and threshold are set).
  /// Queries whose end-to-end latency (queue wait included) meets the
  /// threshold are appended as JSONL, with the merged per-query trace
  /// retained alongside — see SlowQueryLog.
  SlowQueryLog::Options slow_query;
  /// Test-only: runs on the worker thread right before a query executes
  /// (after the deadline check; not called for rejected/expired queries).
  std::function<void(const exec::QueryRequest&)> pre_execute_hook;
  /// Workload observation: called on a worker thread with every
  /// successfully parsed query, before the cache lookups (cache hits
  /// are traffic too). The adaptive-repartitioning path hangs its
  /// per-property weight accumulation here. Must be thread-safe.
  std::function<void(const sparql::QueryGraph&)> query_observer;
};

/// The concurrent front-end over the redesigned execution API: admits
/// QueryRequests from any thread, runs them on a dedicated worker pool
/// against an immutable ServingState snapshot, and caches plans (by
/// canonical query shape) and IEQ results (by exact query), both
/// invalidated by generation mismatch rather than by explicit flushes —
/// Publish()ing a new snapshot is all the update path ever does.
///
/// Metrics (obs::MetricsRegistry::Default()): serve.admitted,
/// serve.rejected, serve.deadline_expired, serve.queries counters;
/// serve.queue_depth gauge; serve.latency_ms / serve.queue_wait_ms
/// histograms; serve.plan_cache.{hits,misses} and
/// serve.result_cache.{hits,misses} counters.
class QueryService {
 public:
  QueryService(std::shared_ptr<const ServingState> state,
               QueryServiceOptions options = QueryServiceOptions());
  /// Shuts down: drains admitted queries, then joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a query; thread-safe. The future resolves with the response
  /// or with Unavailable (queue full under kReject, or shut down),
  /// DeadlineExceeded (options.deadline_ms elapsed before a worker got
  /// to it), or whatever the execution itself returns. Error messages
  /// carry the query text.
  std::future<Result<exec::QueryResponse>> Submit(exec::QueryRequest request);

  /// Submit + wait: the synchronous convenience used by tests and the
  /// CLI's serial paths.
  Result<exec::QueryResponse> Execute(exec::QueryRequest request);

  /// Atomically swaps the serving snapshot; called by the update thread
  /// after capturing a new ServingState. In-flight queries finish on the
  /// snapshot they started with; caches self-invalidate because their
  /// entries' generations stop matching.
  void Publish(std::shared_ptr<const ServingState> state);

  std::shared_ptr<const ServingState> state() const;
  uint64_t generation() const { return state()->generation(); }

  /// Stops admissions (Submit fails with Unavailable), drains the queue,
  /// joins the workers. Idempotent; the destructor calls it.
  void Shutdown();

  size_t queue_depth() const;

  /// Null when the slow-query log is disabled.
  const SlowQueryLog* slow_query_log() const { return slow_log_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    exec::QueryRequest request;
    std::promise<Result<exec::QueryResponse>> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;
    bool has_deadline = false;
  };

  void WorkerLoop();
  /// The post-admission pipeline: result cache, plan cache, execute.
  Result<exec::QueryResponse> Run(const exec::QueryRequest& request,
                                  double queue_wait_millis);

  QueryServiceOptions options_;

  mutable std::mutex state_mutex_;
  std::shared_ptr<const ServingState> state_;

  mutable std::mutex queue_mutex_;
  std::condition_variable work_available_;
  std::condition_variable space_available_;
  std::deque<Pending> queue_;
  bool admitting_ = true;
  bool stop_workers_ = false;

  struct PlanEntry {
    uint64_t generation = 0;
    std::shared_ptr<const exec::QueryPlan> plan;
  };
  std::mutex plan_cache_mutex_;
  LruCache<std::shared_ptr<const PlanEntry>> plan_cache_;

  std::mutex result_cache_mutex_;
  /// Values are whole responses (generation inside); a hit additionally
  /// requires entry->generation == current state generation.
  LruCache<std::shared_ptr<const exec::QueryResponse>> result_cache_;

  std::unique_ptr<SlowQueryLog> slow_log_;

  std::vector<std::thread> workers_;
};

}  // namespace mpc::serve

#endif  // MPC_SERVE_QUERY_SERVICE_H_

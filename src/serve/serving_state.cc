#include "serve/serving_state.h"

#include <utility>

namespace mpc::serve {

ServingState::ServingState(rdf::RdfGraph graph,
                           partition::Partitioning partitioning,
                           uint64_t generation,
                           const ServingStateOptions& options)
    : graph_(std::move(graph)),
      cluster_(exec::Cluster::Build(std::move(partitioning),
                                    options.build_threads)),
      generation_(generation) {
  exec::ExecutorOptions exec_options = options.executor;
  exec_options.generation = generation_;
  distributed_ = std::make_unique<exec::DistributedExecutor>(cluster_, graph_,
                                                             exec_options);
  gstored_ =
      std::make_unique<exec::GStoredExecutor>(cluster_, graph_, exec_options);
}

std::shared_ptr<const ServingState> ServingState::Capture(
    dynamic::IncrementalMaintainer& maintainer,
    const ServingStateOptions& options) {
  return Build(maintainer.graph().Clone(), maintainer.CompactPartitioning(),
               maintainer.generation(), options);
}

std::shared_ptr<const ServingState> ServingState::Build(
    rdf::RdfGraph graph, partition::Partitioning partitioning,
    uint64_t generation, const ServingStateOptions& options) {
  // make_shared needs a public constructor; the factories are the only
  // creation paths, so plain new keeps the constructor private.
  return std::shared_ptr<const ServingState>(new ServingState(
      std::move(graph), std::move(partitioning), generation, options));
}

}  // namespace mpc::serve

#include "serve/serving_state.h"

#include <utility>

namespace mpc::serve {

ServingState::ServingState(rdf::RdfGraph graph,
                           std::unique_ptr<exec::ClusterBackend> backend,
                           uint64_t generation,
                           const ServingStateOptions& options)
    : graph_(std::move(graph)),
      cluster_(std::move(backend)),
      generation_(generation) {
  exec::ExecutorOptions exec_options = options.executor;
  exec_options.generation = generation_;
  distributed_ = std::make_unique<exec::DistributedExecutor>(*cluster_, graph_,
                                                             exec_options);
  // The gStoreD baseline reads per-site stores directly; it exists only
  // when the backend actually has them in this process.
  if (const auto* local = dynamic_cast<const exec::Cluster*>(cluster_.get())) {
    gstored_ =
        std::make_unique<exec::GStoredExecutor>(*local, graph_, exec_options);
  }
}

std::shared_ptr<const ServingState> ServingState::Capture(
    dynamic::IncrementalMaintainer& maintainer,
    const ServingStateOptions& options) {
  // Out-of-core path: compose the pack-time bases with the maintainer's
  // delta instead of rebuilding indexes. Only sound while ownership is
  // exactly what the segments were packed for — any repartition (which
  // re-baselines the delta sets too) or hot-vertex migration (which
  // moves ownership without rewriting the site files) forces the
  // rebuild below.
  const partition::Partitioning& maintained = maintainer.partitioning();
  if (!options.base_sources.empty() && maintainer.repartition_count() == 0 &&
      maintainer.migration_count() == 0 &&
      !maintainer.repartition_pending() &&
      maintained.kind() == partition::PartitioningKind::kVertexDisjoint &&
      options.base_sources.size() == maintained.k()) {
    const auto& added_set = maintainer.added_triples();
    const auto& deleted_set = maintainer.deleted_triples();
    std::vector<rdf::Triple> added(added_set.begin(), added_set.end());
    std::vector<rdf::Triple> deleted(deleted_set.begin(), deleted_set.end());
    auto cluster = std::make_unique<exec::Cluster>(exec::Cluster::BuildOverlay(
        maintained, options.base_sources, added, deleted));
    return std::shared_ptr<const ServingState>(
        new ServingState(maintainer.graph().Clone(), std::move(cluster),
                         maintainer.generation(), options));
  }
  return Build(maintainer.graph().Clone(), maintainer.CompactPartitioning(),
               maintainer.generation(), options);
}

std::shared_ptr<const ServingState> ServingState::Build(
    rdf::RdfGraph graph, partition::Partitioning partitioning,
    uint64_t generation, const ServingStateOptions& options) {
  auto cluster = std::make_unique<exec::Cluster>(exec::Cluster::Build(
      std::move(partitioning), options.build_threads));
  // make_shared needs a public constructor; the factories are the only
  // creation paths, so plain new keeps the constructor private.
  return std::shared_ptr<const ServingState>(new ServingState(
      std::move(graph), std::move(cluster), generation, options));
}

std::shared_ptr<const ServingState> ServingState::WrapBackend(
    rdf::RdfGraph graph, std::unique_ptr<exec::ClusterBackend> backend,
    uint64_t generation, const ServingStateOptions& options) {
  return std::shared_ptr<const ServingState>(new ServingState(
      std::move(graph), std::move(backend), generation, options));
}

}  // namespace mpc::serve

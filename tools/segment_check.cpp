// segment_check — offline validator for `mpc pack` output.
//
//   segment_check <partition_dir>     validate every partition_<i>.mpcseg
//   segment_check <file.mpcseg>...    validate the listed segments
//
// Each segment is opened with full checksum verification and then deep
// checked: every block of both runs is decoded and the TOC's claims are
// re-derived (global sort order, first/last keys, zone maps, per-property
// counts and block ranges). Prints one summary line per valid segment;
// any violation prints the ParseError and exits 1. Run it after packing
// (or after copying segments between machines) so serving can safely use
// --store=segment with lazy block verification.

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "storage/segment_store.h"
#include "storage/segment_writer.h"

namespace {

using namespace mpc;

int CheckOne(const std::string& path) {
  storage::SegmentStore::OpenOptions options;
  options.verify_blocks = true;
  Result<storage::SegmentStore> segment =
      storage::SegmentStore::Open(path, options);
  if (!segment.ok()) {
    std::cerr << path << ": " << segment.status().ToString() << "\n";
    return 1;
  }
  Status deep = segment->DeepCheck();
  if (!deep.ok()) {
    std::cerr << path << ": " << deep.ToString() << "\n";
    return 1;
  }
  const storage::SegmentHeader& h = segment->header();
  std::cout << path << ": ok — site " << h.site << "/" << h.k << ", "
            << FormatWithCommas(h.num_triples) << " triples, "
            << h.pso_num_blocks << "+" << h.pos_num_blocks << " blocks ("
            << FormatWithCommas(h.block_size) << " B), "
            << FormatWithCommas(segment->file_size()) << " B ("
            << FormatDouble(h.num_triples == 0
                                ? 0.0
                                : static_cast<double>(segment->file_size()) /
                                      static_cast<double>(h.num_triples),
                            2)
            << " B/triple), fingerprint "
            << (h.partition_fingerprint != 0 ? "bound" : "unbound") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: segment_check <partition_dir | segment.mpcseg>...\n";
    return 2;
  }
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      // All consecutively-numbered site segments in the directory.
      for (uint32_t site = 0;; ++site) {
        const std::string path = storage::SegmentPath(arg, site);
        if (!std::filesystem::exists(path, ec)) break;
        paths.push_back(path);
      }
      if (paths.empty()) {
        std::cerr << arg << ": no partition_*.mpcseg segments (run `mpc "
                     "pack` first)\n";
        return 1;
      }
    } else {
      paths.push_back(arg);
    }
  }
  int failures = 0;
  for (const std::string& path : paths) failures += CheckOne(path);
  if (failures > 0) {
    std::cerr << failures << "/" << paths.size() << " segments invalid\n";
    return 1;
  }
  std::cout << paths.size() << " segments valid\n";
  return 0;
}

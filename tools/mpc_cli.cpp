// mpc — command-line front end for the library.
//
//   mpc stats <data.nt>
//   mpc partition <data.nt> <out_dir> [--strategy=mpc|hash|vp|metis]
//                 [--k=N] [--epsilon=E] [--seed=S] [--threads=T]
//   mpc classify <data.nt> <partition_dir> <sparql...>
//   mpc explain <data.nt> <partition_dir> <sparql...>
//   mpc pack <data.nt> <partition_dir> [--block-size=B]
//   mpc query <data.nt> <partition_dir> <sparql...>
//       [--store=memory|segment]
//       [--fail-sites=0,3] [--fault-rate=P] [--transient-rate=P]
//       [--site-timeout-ms=T] [--retries=N] [--fault-seed=S]
//       [--partial-results=fail|best-effort]
//   mpc update <data.nt> <partition_dir> <updates.ulog>
//       [--policy=threshold|periodic|never] [--period=N]
//       [--max-lcross-growth=G] [--min-lcross-slack=N]
//       [--workload=FILE] [--migrate] [--max-moves=N]
//       [--report-every=N]
//       [--repartition=sync|background] [--out=DIR] [--threads=T]
//       [--journal-dir=DIR] [--checkpoint-every=N] [--recover]
//       [--max-replay=N] [--backpressure=block|reanchor]
//   mpc serve <data.nt> <partition_dir> --queries=FILE
//       [--concurrency=N] [--qps=R] [--repeat=N] [--queue-cap=N]
//       [--admission=reject|block] [--deadline-ms=D]
//       [--updates=FILE] [--update-interval-ms=I]
//       [--policy=...] [--workload=FILE] [--migrate]
//
// Workload-adaptive maintenance (update and serve): --workload=FILE
// reads one SPARQL query per line and weighs each property by the
// number of queries touching it (weight 1 + count, so unqueried
// properties still count once); the threshold policy then fires on the
// *weighted* |L_cross| too, reacting faster when hot properties start
// crossing. --migrate arms the cheaper escalation level: before paying
// for a full repartition the maintainer moves up to --max-moves hot
// boundary vertices between sites, and only recomputes from scratch if
// the drift is still over the bound afterwards. `serve` additionally
// accumulates weights live from the queries it serves (under --updates,
// re-fed to the maintainer before every batch) and defaults to
// --policy=never, keeping its historical fixed-partition behavior
// unless a policy is requested.
//
// `serve` replays a query file (one SPARQL query per line; blank lines
// and lines starting with # are skipped) through the concurrent
// QueryService: --concurrency workers drain a --queue-cap-bounded
// admission queue, --qps paces the open-loop submitter (0 = as fast as
// possible), --repeat replays the file N times, and --deadline-ms fails
// queries that wait in the queue past their deadline. With --updates the
// run streams an update log through an IncrementalMaintainer on a side
// thread, publishing a fresh serving snapshot after every batch — the
// result cache invalidates itself on the generation bump. The summary
// line "rejected: N" plus serve.* histogram quantiles make runs easy to
// assert on from scripts.
//
// `update` streams an update log (batches of `+ <s> <p> <o> .` inserts /
// `- ...` deletes, separated by blank lines) through the incremental
// maintainer, printing drift reports and the repartitions the policy
// triggered; --out saves the final compacted partitioning.
//
// With --journal-dir every applied batch is write-ahead journaled and
// periodically checkpointed there, so a crashed run can be resumed with
// --recover: the maintainer reloads the latest checkpoint, replays the
// journal tail, and the stream continues from the first unapplied batch
// (state bit-identical to a run that never crashed). A journal is bound
// to its partition_dir by fingerprint; re-running without --recover over
// an existing journal is refused rather than silently double-applied.
//
// `pack` writes each site's triples as an immutable compressed segment
// (partition_<i>.mpcseg) next to the partition's N-Triples files; with
// --store=segment, query/serve/site then mmap those segments instead of
// re-parsing and re-indexing — cold start becomes a file map plus a TOC
// read, and resident memory is bounded by the pages queries touch.
// Results are bit-identical between the two backends.
//
// The SPARQL argument may be a file path or an inline query string.
// --threads=0 (the default) uses every hardware thread; --threads=1 runs
// serially. Results are identical at any value.
//
// Observability (every command):
//   --trace-out=FILE     write a Chrome trace_event JSON of the run
//                        (load in chrome://tracing or ui.perfetto.dev)
//   --trace-summary      print a collapsed per-thread span tree to stdout
//   --metrics-out=FILE   write the metrics registry (counters, gauges,
//                        histograms with p50/p95/p99) as JSON
//
// The fault flags inject deterministic site failures into the simulated
// cluster (see DESIGN.md "Fault model"): --fail-sites crashes the listed
// sites, --fault-rate is a per-(site,subquery) crash probability,
// --transient-rate a per-attempt retryable error probability. Unknown
// flags and malformed values are rejected with a non-zero exit.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/crash_hook.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "dynamic/incremental_maintainer.h"
#include "dynamic/update_journal.h"
#include "dynamic/update_log.h"
#include "exec/cluster.h"
#include "exec/decomposer.h"
#include "exec/distributed_executor.h"
#include "exec/explain.h"
#include "exec/query_classifier.h"
#include "exec/remote_cluster.h"
#include "exec/site_worker.h"
#include "mpc/mpc_partitioner.h"
#include "mpc/weighted_selector.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/partition_io.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "rdf/ntriples.h"
#include "rdf/stats.h"
#include "serve/admin.h"
#include "serve/query_service.h"
#include "serve/serving_state.h"
#include "sparql/parser.h"
#include "storage/segment_store.h"
#include "storage/segment_writer.h"

namespace {

using namespace mpc;

int Usage() {
  std::cerr <<
      R"(usage:
  mpc stats <data.nt>
  mpc partition <data.nt> <out_dir> [--strategy=mpc|hash|vp|metis]
                [--k=N] [--epsilon=E] [--seed=S] [--threads=T]
  mpc classify <data.nt> <partition_dir> <sparql-or-file>
  mpc explain <data.nt> <partition_dir> <sparql-or-file>
  mpc pack <data.nt> <partition_dir> [--block-size=B]
  mpc query <data.nt> <partition_dir> <sparql-or-file>
      [--store=memory|segment]
      [--fail-sites=0,3] [--fault-rate=P] [--transient-rate=P]
      [--site-timeout-ms=T] [--retries=N] [--retry-backoff-ms=B]
      [--fault-seed=S] [--partial-results=fail|best-effort]
  mpc update <data.nt> <partition_dir> <updates.ulog>
      [--policy=threshold|periodic|never] [--period=N]
      [--max-lcross-growth=G] [--min-lcross-slack=N]
      [--workload=FILE] [--migrate] [--max-moves=N]
      [--report-every=N]
      [--repartition=sync|background] [--out=DIR] [--threads=T]
      [--journal-dir=DIR] [--checkpoint-every=N] [--recover]
      [--max-replay=N] [--backpressure=block|reanchor]
  mpc serve <data.nt> <partition_dir> --queries=FILE
      [--store=memory|segment]
      [--concurrency=N] [--qps=R] [--repeat=N]
      [--queue-cap=N] [--admission=reject|block] [--deadline-ms=D]
      [--updates=FILE] [--update-interval-ms=I]
      [--policy=threshold|periodic|never] [--workload=FILE]
      [--migrate] [--max-moves=N] [--min-lcross-slack=N]
      [--remote] [--socket-dir=DIR] [--worker-binary=PATH]
      [--max-restarts=N] [--kill-site=I] [--kill-after-queries=N]
      [--admin-socket=PATH] [--slow-query-ms=T] [--slow-log=FILE]
  mpc site <data.nt> <partition_dir> --site=I --socket=PATH
      [--store=memory|segment]
      [--generation=G] [--kill-after-queries=N]
  mpc top --socket=ADMIN_PATH [--json] [--interval-ms=I] [--count=N]
observability (any command):
      [--trace-out=FILE] [--trace-summary] [--metrics-out=FILE]
serve also answers SIGUSR1 with a live flush: metrics/trace out files
are rewritten and a windowed stats snapshot is printed, the run keeps
going. --admin-socket exposes the same snapshot to `mpc top`.
)";
  return 2;
}

/// The tool's "--key=value" flags (parsed by common/flags.h; unknown or
/// malformed flags abort with exit 2 rather than running with defaults).
struct Flags {
  std::string strategy = "mpc";
  uint32_t k = 8;
  double epsilon = 0.1;
  uint64_t seed = 1;
  int threads = 0;  // 0 = hardware_concurrency

  // Store backend for query/serve/site ("segment" needs a prior
  // `mpc pack`), and the pack command's block size.
  std::string store = "memory";
  uint32_t block_size = storage::kDefaultBlockSize;

  // Fault injection (query command).
  std::vector<uint32_t> fail_sites;
  double fault_rate = 0.0;      // crash probability per (site, subquery)
  double transient_rate = 0.0;  // retryable-error probability per attempt
  double site_timeout_ms = 0.0;
  int retries = 2;
  double retry_backoff_ms = 1.0;
  uint64_t fault_seed = 0;
  std::string partial_results = "fail";

  // Streaming updates (update and serve commands). An empty policy means
  // the command's default: update defaults to "threshold", serve to
  // "never" (historically serve never repartitioned; adaptive serving is
  // opt-in via --policy/--migrate).
  std::string policy;
  uint32_t period = 64;
  double max_lcross_growth = 0.5;
  uint64_t min_lcross_slack = 4;
  uint32_t report_every = 8;
  std::string repartition = "sync";
  std::string out_dir;

  // Workload-adaptive repartitioning (update and serve commands):
  // --workload seeds per-property weights from a query file (serve also
  // accumulates them live from served queries), --migrate enables the
  // hot-vertex migration escalation below a full repartition.
  std::string workload_file;
  bool migrate = false;
  uint32_t max_moves = 16;

  // Durability (update command). checkpoint_every=0 checkpoints only
  // after repartitions; crash_after is a test hook that SIGKILLs the
  // process right after the Nth batch commits (journal + apply).
  std::string journal_dir;
  uint32_t checkpoint_every = 0;
  bool recover = false;
  uint64_t max_replay = 0;
  std::string backpressure = "block";
  uint32_t crash_after = 0;

  // Real multi-process cluster (serve --remote) and the `site` worker
  // command. kill_after_queries doubles as the worker-side chaos hook.
  bool remote = false;
  std::string socket_dir;
  std::string worker_binary;
  uint32_t kill_site = UINT32_MAX;
  uint64_t kill_after_queries = 0;
  int max_restarts = 3;
  uint32_t site = 0;
  std::string socket_path;
  uint64_t generation = 1;

  // Query serving (serve command).
  std::string queries_file;
  int concurrency = 16;
  double qps = 0.0;  // 0 = open throttle (submit as fast as possible)
  uint32_t repeat = 1;
  uint32_t queue_cap = 1024;
  std::string admission = "reject";
  double deadline_ms = 0.0;  // 0 = no deadline
  std::string updates_file;
  double update_interval_ms = 0.0;

  // Live introspection (serve command) and the top client.
  std::string admin_socket;
  double slow_query_ms = 0.0;  // 0 = slow-query log off
  std::string slow_log;        // default: slow_queries.jsonl
  bool json = false;
  double interval_ms = 2000.0;
  uint32_t count = 0;  // 0 = refresh until interrupted

  // Observability (any command).
  std::string trace_out;
  std::string metrics_out;
  bool trace_summary = false;

  std::vector<std::string> positional;

  partition::PartitionerOptions PartitionerOpts() const {
    return partition::PartitionerOptions{
        .k = k, .epsilon = epsilon, .seed = seed, .num_threads = threads};
  }

  exec::ExecutorOptions ExecutorOpts() const {
    exec::ExecutorOptions options;
    options.num_threads = threads;
    options.faults.seed = fault_seed;
    options.faults.crash_rate = fault_rate;
    options.faults.transient_rate = transient_rate;
    options.faults.fail_sites = fail_sites;
    options.network.site_timeout_ms = site_timeout_ms;
    options.network.max_retries = retries;
    options.network.retry_backoff_ms = retry_backoff_ms;
    options.partial_results = partial_results == "best-effort"
                                  ? exec::PartialResultPolicy::kBestEffort
                                  : exec::PartialResultPolicy::kFail;
    return options;
  }

  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    FlagParser parser;
    parser.AddString("strategy", &flags.strategy);
    parser.AddUint32("k", &flags.k);
    parser.AddDouble("epsilon", &flags.epsilon);
    parser.AddUint64("seed", &flags.seed);
    parser.AddInt("threads", &flags.threads);
    parser.AddChoice("store", &flags.store, {"memory", "segment"});
    parser.AddUint32("block-size", &flags.block_size);
    parser.AddUint32List("fail-sites", &flags.fail_sites);
    parser.AddDouble("fault-rate", &flags.fault_rate);
    parser.AddDouble("transient-rate", &flags.transient_rate);
    parser.AddDouble("site-timeout-ms", &flags.site_timeout_ms);
    parser.AddInt("retries", &flags.retries);
    parser.AddDouble("retry-backoff-ms", &flags.retry_backoff_ms);
    parser.AddUint64("fault-seed", &flags.fault_seed);
    parser.AddChoice("partial-results", &flags.partial_results,
                     {"fail", "best-effort"});
    parser.AddChoice("policy", &flags.policy,
                     {"threshold", "periodic", "never"});
    parser.AddUint32("period", &flags.period);
    parser.AddDouble("max-lcross-growth", &flags.max_lcross_growth);
    parser.AddUint64("min-lcross-slack", &flags.min_lcross_slack);
    parser.AddString("workload", &flags.workload_file);
    parser.AddBool("migrate", &flags.migrate);
    parser.AddUint32("max-moves", &flags.max_moves);
    parser.AddUint32("report-every", &flags.report_every);
    parser.AddChoice("repartition", &flags.repartition,
                     {"sync", "background"});
    parser.AddString("journal-dir", &flags.journal_dir);
    parser.AddUint32("checkpoint-every", &flags.checkpoint_every);
    parser.AddBool("recover", &flags.recover);
    parser.AddUint64("max-replay", &flags.max_replay);
    parser.AddChoice("backpressure", &flags.backpressure,
                     {"block", "reanchor"});
    parser.AddUint32("crash-after", &flags.crash_after);
    parser.AddBool("remote", &flags.remote);
    parser.AddString("socket-dir", &flags.socket_dir);
    parser.AddString("worker-binary", &flags.worker_binary);
    parser.AddUint32("kill-site", &flags.kill_site);
    parser.AddUint64("kill-after-queries", &flags.kill_after_queries);
    parser.AddInt("max-restarts", &flags.max_restarts);
    parser.AddUint32("site", &flags.site);
    parser.AddString("socket", &flags.socket_path);
    parser.AddUint64("generation", &flags.generation);
    parser.AddString("queries", &flags.queries_file);
    parser.AddInt("concurrency", &flags.concurrency);
    parser.AddDouble("qps", &flags.qps);
    parser.AddUint32("repeat", &flags.repeat);
    parser.AddUint32("queue-cap", &flags.queue_cap);
    parser.AddChoice("admission", &flags.admission, {"reject", "block"});
    parser.AddDouble("deadline-ms", &flags.deadline_ms);
    parser.AddString("updates", &flags.updates_file);
    parser.AddDouble("update-interval-ms", &flags.update_interval_ms);
    parser.AddString("admin-socket", &flags.admin_socket);
    parser.AddDouble("slow-query-ms", &flags.slow_query_ms);
    parser.AddString("slow-log", &flags.slow_log);
    parser.AddBool("json", &flags.json);
    parser.AddDouble("interval-ms", &flags.interval_ms);
    parser.AddUint32("count", &flags.count);
    parser.AddString("out", &flags.out_dir);
    parser.AddString("trace-out", &flags.trace_out);
    parser.AddString("metrics-out", &flags.metrics_out);
    parser.AddBool("trace-summary", &flags.trace_summary);
    Result<std::vector<std::string>> positional =
        parser.Parse(argc, argv, first);
    if (!positional.ok()) return positional.status();
    flags.positional = std::move(*positional);
    return flags;
  }
};

Result<rdf::RdfGraph> LoadGraph(const std::string& path, int threads) {
  rdf::GraphBuilder builder;
  Status st = rdf::NTriplesParser::ParseFile(path, &builder, threads);
  if (!st.ok()) return st;
  return builder.Build();
}

/// Graceful-drain flag for `serve` and `site`: SIGINT/SIGTERM stop
/// admission, in-flight work finishes, metrics/trace flush, exit 0.
std::atomic<bool> g_drain{false};

void HandleDrainSignal(int /*signum*/) {
  g_drain.store(true, std::memory_order_relaxed);
}

void InstallDrainHandlers() {
  g_drain.store(false, std::memory_order_relaxed);
  std::signal(SIGINT, HandleDrainSignal);
  std::signal(SIGTERM, HandleDrainSignal);
}

/// Live-flush flag for `serve`: SIGUSR1 asks for a mid-run flush of
/// --metrics-out/--trace-out plus a stats dump, without terminating.
std::atomic<bool> g_flush{false};

void HandleFlushSignal(int /*signum*/) {
  g_flush.store(true, std::memory_order_relaxed);
}

/// The running mpc binary, for serve --remote to exec its own workers.
std::string SelfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "mpc";
  buf[n] = '\0';
  return std::string(buf);
}

/// Maps the shared drift-policy and migration flags onto maintainer
/// options. `fallback` is the command's default policy: "threshold" for
/// update, "never" for serve (whose historical behavior is a fixed
/// partition).
void ApplyPolicyFlags(const Flags& flags, const std::string& fallback,
                      dynamic::MaintainerOptions* options) {
  const std::string policy = flags.policy.empty() ? fallback : flags.policy;
  if (policy == "never") {
    options->policy.kind = dynamic::RepartitionPolicy::Kind::kNever;
  } else if (policy == "periodic") {
    options->policy.kind = dynamic::RepartitionPolicy::Kind::kPeriodic;
    options->policy.period_batches = flags.period;
  } else {
    options->policy.kind = dynamic::RepartitionPolicy::Kind::kThreshold;
    options->policy.max_lcross_growth = flags.max_lcross_growth;
    options->policy.min_lcross_slack = flags.min_lcross_slack;
  }
  options->migration.enabled = flags.migrate;
  options->migration.max_moves = flags.max_moves;
}

/// Loads a --workload file (one SPARQL query per line; blank lines and
/// #-comments skipped) into per-property weights: 1 + number of queries
/// touching the property, so unqueried properties still weigh as much
/// as one fresh (beyond-vector) property does.
Result<std::vector<double>> LoadWorkloadWeights(const std::string& path,
                                                const rdf::RdfGraph& graph) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open --workload file: " + path);
  }
  std::vector<sparql::QueryGraph> queries;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    Result<sparql::QueryGraph> query = sparql::SparqlParser::Parse(line);
    if (!query.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + query.status().message());
    }
    queries.push_back(std::move(*query));
  }
  std::vector<double> weights =
      core::ComputeWorkloadPropertyWeights(queries, graph);
  for (double& w : weights) w += 1.0;
  return weights;
}

/// The argument is a file path if it exists on disk; otherwise inline
/// SPARQL text.
std::string LoadQueryText(const std::string& arg) {
  std::error_code ec;
  if (std::filesystem::exists(arg, ec) && !ec) {
    std::ifstream in(arg, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }
  return arg;
}

int CmdStats(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  Result<rdf::RdfGraph> graph = LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  rdf::DatasetStats stats =
      rdf::ComputeStats(flags.positional[0], *graph);
  std::cout << "entities:   " << FormatWithCommas(stats.num_entities)
            << "\ntriples:    " << FormatWithCommas(stats.num_triples)
            << "\nproperties: " << FormatWithCommas(stats.num_properties)
            << "\ntop-property share: "
            << FormatDouble(100.0 * rdf::TopPropertyShare(*graph), 2)
            << "%\n";
  auto histogram = rdf::PropertyHistogram(*graph);
  std::cout << "property frequency head:";
  for (size_t i = 0; i < std::min<size_t>(8, histogram.size()); ++i) {
    std::cout << " " << FormatWithCommas(histogram[i]);
  }
  std::cout << "\n";
  return 0;
}

int CmdPartition(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  Result<rdf::RdfGraph> graph =
      LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  partition::RunStats run_stats;
  partition::Partitioning partitioning;
  const partition::PartitionerOptions options = flags.PartitionerOpts();
  if (flags.strategy == "mpc") {
    core::MpcOptions mpc_options;
    mpc_options.base = options;
    partitioning =
        core::MpcPartitioner(mpc_options).Partition(*graph, &run_stats);
  } else if (flags.strategy == "hash") {
    partitioning = partition::SubjectHashPartitioner(options).Partition(
        *graph, &run_stats);
  } else if (flags.strategy == "vp") {
    partitioning =
        partition::VpPartitioner(options).Partition(*graph, &run_stats);
  } else if (flags.strategy == "metis") {
    partitioning = partition::EdgeCutPartitioner(options).Partition(
        *graph, &run_stats);
  } else {
    std::cerr << "unknown strategy: " << flags.strategy << "\n";
    return 2;
  }

  Status st = partition::PartitionIo::Save(*graph, partitioning,
                                           flags.positional[1]);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::string stages;
  for (const partition::RunStats::Stage& stage : run_stats.stages) {
    if (!stages.empty()) stages += " + ";
    stages += stage.name + " " + FormatMillis(stage.millis);
  }
  std::cout << "strategy:            " << flags.strategy << " (k="
            << flags.k << ", eps=" << flags.epsilon << ", threads="
            << run_stats.threads_used << ")\n"
            << "partitioning time:   " << FormatMillis(run_stats.total_millis)
            << " ms  (" << stages << ")\n"
            << "crossing properties: "
            << FormatWithCommas(partitioning.num_crossing_properties())
            << " / " << FormatWithCommas(graph->num_properties()) << "\n"
            << "crossing edges:      "
            << FormatWithCommas(partitioning.num_crossing_edges()) << "\n"
            << "balance ratio:       "
            << FormatDouble(partitioning.BalanceRatio(), 3) << "\n"
            << "replication ratio:   "
            << FormatDouble(partitioning.ReplicationRatio(*graph), 3)
            << "\nwritten to:          " << flags.positional[1] << "\n";
  return 0;
}

int CmdExplain(const Flags& flags) {
  if (flags.positional.size() != 3) return Usage();
  Result<rdf::RdfGraph> graph = LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(*graph, flags.positional[1]);
  if (!partitioning.ok()) {
    std::cerr << partitioning.status().ToString() << "\n";
    return 1;
  }
  Result<sparql::QueryGraph> query =
      sparql::SparqlParser::Parse(LoadQueryText(flags.positional[2]));
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }
  if (partitioning->kind() != partition::PartitioningKind::kVertexDisjoint) {
    std::cerr << "explain requires a vertex-disjoint partitioning\n";
    return 1;
  }
  exec::Cluster cluster =
      exec::Cluster::Build(std::move(*partitioning), flags.threads);
  std::cout << exec::ExplainQuery(*query, cluster.partitioning(), *graph,
                                  &cluster);
  return 0;
}

int CmdClassifyOrQuery(const Flags& flags, bool execute) {
  if (flags.positional.size() != 3) return Usage();
  Result<rdf::RdfGraph> graph = LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(*graph, flags.positional[1]);
  if (!partitioning.ok()) {
    std::cerr << partitioning.status().ToString() << "\n";
    return 1;
  }
  Result<sparql::QueryGraph> query =
      sparql::SparqlParser::Parse(LoadQueryText(flags.positional[2]));
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  if (partitioning->kind() == partition::PartitioningKind::kVertexDisjoint) {
    exec::Classification cls =
        exec::ClassifyQuery(*query, *partitioning, *graph);
    std::cout << "class:      " << exec::IeqClassName(cls.cls) << "\n"
              << "independent: "
              << (cls.independently_executable() ? "yes (union only)"
                                                 : "no (join needed)")
              << "\ncrossing patterns: " << cls.num_crossing_patterns
              << " / " << query->num_patterns() << "\n";
    if (!cls.independently_executable()) {
      exec::Decomposition dec =
          exec::DecomposeQuery(*query, cls.crossing_pattern);
      std::cout << "decomposes into " << dec.num_subqueries()
                << " subqueries\n";
    }
  } else {
    std::cout << "edge-disjoint (VP) partitioning; local: "
              << (exec::IsVpLocalQuery(*query, *partitioning, *graph)
                      ? "yes"
                      : "no")
              << "\n";
  }
  if (!execute) return 0;

  exec::Cluster cluster;
  if (flags.store == "segment") {
    Result<exec::Cluster> opened = exec::Cluster::BuildFromSegments(
        std::move(*partitioning), flags.positional[1], flags.threads);
    if (!opened.ok()) {
      std::cerr << opened.status().ToString()
                << "\n(--store=segment needs `mpc pack " << flags.positional[0]
                << " " << flags.positional[1] << "` first)\n";
      return 1;
    }
    cluster = std::move(*opened);
  } else {
    cluster = exec::Cluster::Build(std::move(*partitioning), flags.threads);
  }
  exec::DistributedExecutor executor(cluster, *graph, flags.ExecutorOpts());
  Result<exec::QueryResponse> response =
      executor.Execute(exec::QueryRequest::FromQuery(*query));
  if (!response.ok()) {
    std::cerr << response.status().ToString() << "\n";
    return 1;
  }
  const exec::ExecutionStats& stats = response->stats;
  store::BindingTable result =
      store::ApplyProjection(response->bindings, query->projection());
  std::cout << "results: " << FormatWithCommas(result.num_rows())
            << "  (QDT " << FormatDouble(stats.decomposition_millis, 1)
            << " + LET " << FormatDouble(stats.local_eval_millis, 1)
            << " + JT " << FormatDouble(stats.join_millis, 1) << " + net "
            << FormatDouble(stats.network_millis, 1) << " = "
            << FormatDouble(stats.total_millis, 1) << " ms; sites "
            << stats.sites_evaluated << " evaluated / "
            << stats.sites_pruned << " pruned)\n";
  if (!stats.complete || stats.sites_failed > 0 || stats.retries > 0) {
    std::cout << "faults:  " << stats.sites_failed
              << " site-subqueries failed, " << stats.retries
              << " retries, " << stats.failover_hits
              << " rows served from replicas; complete="
              << (stats.complete ? "yes" : "no")
              << " completeness>=" << FormatDouble(
                     100.0 * stats.completeness_bound, 1)
              << "% (replicated " << stats.replicated_failed_vertices << "/"
              << stats.failed_site_vertices
              << " failed-site vertices; fault wait "
              << FormatDouble(stats.fault_wait_millis, 1) << " ms)\n";
  }
  const size_t limit = 20;
  for (size_t r = 0; r < std::min(limit, result.rows.size()); ++r) {
    for (size_t c = 0; c < result.var_ids.size(); ++c) {
      std::cout << (c ? " " : "  ")
                << graph->VertexName(result.rows[r][c]);
    }
    std::cout << "\n";
  }
  if (result.rows.size() > limit) {
    std::cout << "  ... (" << result.rows.size() - limit << " more)\n";
  }
  return 0;
}

/// `mpc pack`: writes one compressed immutable segment per site into the
/// partition directory, stamped with its fingerprint. One-time cost at
/// partition time; --store=segment then opens these instead of
/// re-parsing the graph.
int CmdPack(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  Result<rdf::RdfGraph> graph = LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(*graph, flags.positional[1]);
  if (!partitioning.ok()) {
    std::cerr << partitioning.status().ToString() << "\n";
    return 1;
  }
  Result<uint64_t> fingerprint =
      partition::PartitionIo::Fingerprint(flags.positional[1]);
  if (!fingerprint.ok()) {
    std::cerr << fingerprint.status().ToString() << "\n";
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  uint64_t total_triples = 0;
  uint64_t total_bytes = 0;
  uint32_t total_blocks = 0;
  for (uint32_t i = 0; i < partitioning->k(); ++i) {
    const partition::Partition& p = partitioning->partition(i);
    std::vector<rdf::Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    storage::SegmentWriterOptions options;
    options.block_size = flags.block_size;
    options.site = i;
    options.k = partitioning->k();
    options.num_properties = graph->num_properties();
    options.num_vertices = graph->num_vertices();
    options.partition_fingerprint = *fingerprint;
    storage::SegmentWriteStats stats;
    Status st = storage::WriteSegment(
        storage::SegmentPath(flags.positional[1], i), std::move(triples),
        options, &stats);
    if (!st.ok()) {
      std::cerr << "site " << i << ": " << st.ToString() << "\n";
      return 1;
    }
    total_triples += stats.num_triples;
    total_bytes += stats.file_bytes;
    total_blocks += stats.pso_blocks + stats.pos_blocks;
  }
  const double millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "packed:     " << partitioning->k() << " segments, "
            << FormatWithCommas(total_triples) << " stored triples, "
            << FormatWithCommas(total_blocks) << " blocks ("
            << FormatWithCommas(flags.block_size) << " B each)\n"
            << "bytes:      " << FormatWithCommas(total_bytes) << " ("
            << FormatDouble(total_triples == 0
                                ? 0.0
                                : static_cast<double>(total_bytes) /
                                      static_cast<double>(total_triples),
                            2)
            << " B/triple vs " << sizeof(rdf::Triple) * 4
            << " B/triple resident in memory)\n"
            << "pack time:  " << FormatMillis(millis) << " ms\n"
            << "written to: " << flags.positional[1] << "\n";
  return 0;
}

int CmdUpdate(const Flags& flags) {
  if (flags.positional.size() != 3) return Usage();
  Result<rdf::RdfGraph> graph = LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(*graph, flags.positional[1]);
  if (!partitioning.ok()) {
    std::cerr << partitioning.status().ToString() << "\n";
    return 1;
  }
  if (partitioning->kind() != partition::PartitioningKind::kVertexDisjoint) {
    std::cerr << "update requires a vertex-disjoint partitioning\n";
    return 1;
  }
  Result<std::vector<dynamic::UpdateBatch>> batches =
      dynamic::UpdateLog::LoadFile(flags.positional[2]);
  if (!batches.ok()) {
    std::cerr << batches.status().ToString() << "\n";
    return 1;
  }

  dynamic::MaintainerOptions options;
  options.num_threads = flags.threads;
  options.background_repartition = flags.repartition == "background";
  options.mpc.base = flags.PartitionerOpts();
  options.executor = flags.ExecutorOpts();
  ApplyPolicyFlags(flags, /*fallback=*/"threshold", &options);
  if (!flags.workload_file.empty()) {
    Result<std::vector<double>> weights =
        LoadWorkloadWeights(flags.workload_file, *graph);
    if (!weights.ok()) {
      std::cerr << weights.status().ToString() << "\n";
      return 1;
    }
    size_t weighted = 0;
    for (double w : *weights) weighted += w > 1.0 ? 1 : 0;
    std::cout << "workload: " << FormatWithCommas(weighted)
              << " queried properties (of "
              << FormatWithCommas(weights->size()) << ")\n";
    options.property_weights = std::move(*weights);
  }

  std::unique_ptr<dynamic::IncrementalMaintainer> maintainer;
  size_t skip = 0;
  if (!flags.journal_dir.empty()) {
    options.journal_dir = flags.journal_dir;
    options.checkpoint_every_batches = flags.checkpoint_every;
    options.max_replay_batches = flags.max_replay;
    options.backpressure = flags.backpressure == "reanchor"
                               ? dynamic::ReplayBackpressure::kReanchor
                               : dynamic::ReplayBackpressure::kBlock;
    std::error_code ec;
    const bool journal_exists = std::filesystem::exists(
        dynamic::UpdateJournal::JournalPath(flags.journal_dir), ec);
    if (journal_exists && !flags.recover) {
      std::cerr << "journal already exists in " << flags.journal_dir
                << "; pass --recover to resume, or use a fresh "
                   "--journal-dir\n";
      return 1;
    }
    Result<uint64_t> fingerprint =
        partition::PartitionIo::Fingerprint(flags.positional[1]);
    if (!fingerprint.ok()) {
      std::cerr << fingerprint.status().ToString() << "\n";
      return 1;
    }
    Result<std::unique_ptr<dynamic::IncrementalMaintainer>> opened =
        dynamic::IncrementalMaintainer::OpenDurable(
            std::move(*graph), std::move(*partitioning), options,
            *fingerprint);
    if (!opened.ok()) {
      std::cerr << opened.status().ToString() << "\n";
      return 1;
    }
    maintainer = std::move(*opened);
    skip = maintainer->batches_applied();
    if (skip > 0) {
      std::cout << "recovered: " << FormatWithCommas(skip)
                << " batches already durable, resuming after them\n";
    }
  } else {
    if (flags.recover) {
      std::cerr << "--recover requires --journal-dir\n";
      return 1;
    }
    maintainer = std::make_unique<dynamic::IncrementalMaintainer>(
        std::move(*graph), std::move(*partitioning), options);
  }
  if (skip > batches->size()) {
    std::cerr << "journal holds " << skip
              << " batches but the update log only has "
              << batches->size() << "; wrong --journal-dir?\n";
    return 1;
  }
  std::cout << "seed: " << FormatWithCommas(maintainer->num_live_triples())
            << " triples, |L_cross| "
            << maintainer->partitioning().num_crossing_properties() << ", "
            << batches->size() - skip << " batches\n";

  size_t inserts = 0;
  size_t deletes = 0;
  size_t noops = 0;
  // Crash-test hook: die without any cleanup, exactly as a power cut
  // would, so check.sh can exercise --recover.
  CrashAfter crash_after(flags.crash_after);
  for (size_t b = skip; b < batches->size(); ++b) {
    dynamic::ApplyResult r = maintainer->ApplyBatch((*batches)[b]);
    if (!r.durability.ok()) {
      std::cerr << "batch " << b + 1
                << ": durability failure, stopping stream: "
                << r.durability.ToString() << "\n";
      return 1;
    }
    inserts += r.inserts;
    deletes += r.deletes;
    noops += r.noops;
    if (r.migrated > 0) {
      std::cout << "batch " << b + 1 << ": migrated " << r.migrated
                << " hot " << (r.migrated == 1 ? "vertex" : "vertices")
                << " (weighted |L_cross| -"
                << FormatDouble(r.migration_gain, 2) << ")"
                << (r.repartition_triggered ? "" : ", repartition avoided")
                << "\n";
    }
    if (r.repartition_triggered) {
      std::cout << "batch " << b + 1 << ": repartition ("
                << r.trigger_reason << ")"
                << (r.repartitioned ? "" : " [background]") << "\n";
    }
    std::cout.flush();
    crash_after.Tick();
    const bool report =
        flags.report_every > 0 &&
        ((b + 1) % flags.report_every == 0 || b + 1 == batches->size());
    if (report) {
      const dynamic::DriftMetrics& m = r.drift;
      std::cout << "batch " << b + 1 << ": live "
                << FormatWithCommas(m.live_triples) << ", |L_cross| "
                << m.crossing_properties << " (seed "
                << m.seed_crossing_properties << "), tombstones "
                << FormatDouble(100.0 * m.tombstone_ratio, 1)
                << "%, replication "
                << FormatDouble(m.replication_ratio, 3) << ", balance "
                << FormatDouble(m.balance_ratio, 3) << "\n";
    }
  }
  maintainer->WaitForRepartition();
  if (maintainer->journaling()) {
    Status st = maintainer->WriteCheckpoint();
    if (!st.ok()) {
      std::cerr << "final checkpoint failed: " << st.ToString() << "\n";
      return 1;
    }
  }

  const dynamic::DriftMetrics final_drift = maintainer->drift();
  std::cout << "applied: " << FormatWithCommas(inserts) << " inserts, "
            << FormatWithCommas(deletes) << " deletes, "
            << FormatWithCommas(noops) << " no-ops; "
            << maintainer->repartition_count() << " repartitions\n";
  if (flags.migrate) {
    std::cout << "migrated: " << FormatWithCommas(final_drift.migrations)
              << " hot-vertex moves\n";
  }
  std::cout << "final:   live " << FormatWithCommas(final_drift.live_triples)
            << ", |L_cross| " << final_drift.crossing_properties
            << ", balance " << FormatDouble(final_drift.balance_ratio, 3);
  if (!options.property_weights.empty()) {
    std::cout << ", weighted |L_cross| "
              << FormatDouble(final_drift.weighted_crossing_properties, 2)
              << " (seed "
              << FormatDouble(final_drift.seed_weighted_crossing_properties,
                              2)
              << ")";
  }
  std::cout << "\n";

  if (!flags.out_dir.empty()) {
    // Save a self-contained pair: the live graph as graph.nt plus a
    // partitioning over *its* id space, so
    //   mpc query <out>/graph.nt <out> ...
    // works directly. (The maintained partitioning covers the grown
    // dictionary universe, including tombstoned vertices, and would not
    // load against the compacted graph.)
    rdf::RdfGraph live = maintainer->MaterializeGraph();
    const partition::VertexAssignment& maintained =
        maintainer->partitioning().assignment();
    partition::VertexAssignment assignment;
    assignment.k = maintained.k;
    assignment.part.resize(live.num_vertices());
    for (rdf::VertexId v = 0; v < live.num_vertices(); ++v) {
      assignment.part[v] =
          maintained.part[maintainer->graph().vertex_dict().Lookup(
              live.VertexName(v))];
    }
    partition::Partitioning compact =
        partition::Partitioning::MaterializeVertexDisjoint(
            live, std::move(assignment), flags.threads);
    Status st = partition::PartitionIo::Save(live, compact, flags.out_dir);
    if (st.ok()) {
      st = rdf::WriteNTriplesFile(live, flags.out_dir + "/graph.nt");
    }
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "written to: " << flags.out_dir << " (+ graph.nt)\n";
  }
  return 0;
}


/// One partition-site worker process: loads its site, serves the framed
/// RPC protocol on --socket until SIGTERM/SIGINT drains it. Spawned by
/// serve --remote (via the SiteSupervisor) or run by hand.
int CmdSite(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  if (flags.socket_path.empty()) {
    std::cerr << "site requires --socket=PATH\n";
    return 2;
  }
  InstallDrainHandlers();
  exec::SiteWorkerOptions options;
  options.graph_path = flags.positional[0];
  options.partition_dir = flags.positional[1];
  options.store_kind = flags.store;
  options.site = flags.site;
  options.socket_path = flags.socket_path;
  options.generation = flags.generation;
  options.kill_after_queries = flags.kill_after_queries;
  options.num_threads = flags.threads;
  options.stop = &g_drain;
  uint64_t served = 0;
  options.queries_served = &served;
  Status st = exec::RunSiteWorker(options);
  if (!st.ok()) {
    std::cerr << "site " << flags.site << ": " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "site " << flags.site << " drained: " << served
            << " queries served\n";
  return 0;
}

int CmdServe(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  if (flags.queries_file.empty()) {
    std::cerr << "serve requires --queries=FILE\n";
    return 2;
  }
  if (flags.remote && !flags.updates_file.empty()) {
    std::cerr << "--remote and --updates are mutually exclusive (workers "
                 "reload only on repartition pushes)\n";
    return 2;
  }
  InstallDrainHandlers();
  g_flush.store(false, std::memory_order_relaxed);
  std::signal(SIGUSR1, HandleFlushSignal);
  // The slow-query log keys on the merged per-query trace, so a slow
  // threshold implies tracing even without --trace-out.
  if (flags.slow_query_ms > 0.0 && !obs::TracingEnabled()) {
    obs::StartTracing();
  }
  Result<rdf::RdfGraph> graph = LoadGraph(flags.positional[0], flags.threads);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(*graph, flags.positional[1]);
  if (!partitioning.ok()) {
    std::cerr << partitioning.status().ToString() << "\n";
    return 1;
  }

  std::vector<std::string> queries;
  {
    std::ifstream in(flags.queries_file);
    if (!in) {
      std::cerr << "cannot open --queries file: " << flags.queries_file
                << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      queries.push_back(line);
    }
  }
  if (queries.empty()) {
    std::cerr << "no queries in " << flags.queries_file << "\n";
    return 1;
  }

  // Executors stay serial inside the serving workers: --concurrency is
  // the parallelism (see QueryServiceOptions::num_workers).
  serve::ServingStateOptions state_options;
  state_options.executor = flags.ExecutorOpts();
  state_options.executor.num_threads = 1;
  state_options.build_threads = flags.threads;

  std::unique_ptr<dynamic::IncrementalMaintainer> maintainer;
  std::vector<dynamic::UpdateBatch> updates;
  std::shared_ptr<const serve::ServingState> state;
  // Live workload accumulation (adaptive serving): the query observer
  // bumps per-property counts as queries are served; the updater thread
  // folds them into the maintainer's weights before each batch. The
  // name→id map is frozen at the seed graph on purpose — the
  // maintainer's dictionary grows concurrently, and properties born
  // after the seed default to weight 1.0 anyway.
  std::mutex workload_mutex;
  std::vector<double> workload_counts;
  std::unordered_map<std::string, rdf::PropertyId> seed_properties;
  std::vector<double> base_weights;
  if (flags.remote) {
    exec::RemoteCluster::Options ropt;
    ropt.worker_binary =
        flags.worker_binary.empty() ? SelfExePath() : flags.worker_binary;
    ropt.graph_path = flags.positional[0];
    ropt.partition_dir = flags.positional[1];
    ropt.store_kind = flags.store;
    ropt.socket_dir =
        flags.socket_dir.empty() ? flags.positional[1] : flags.socket_dir;
    ropt.worker_threads = flags.threads;
    ropt.kill_site = flags.kill_site;
    ropt.kill_after_queries = flags.kill_after_queries;
    ropt.supervisor.max_restarts = flags.max_restarts;
    Result<std::unique_ptr<exec::RemoteCluster>> remote =
        exec::RemoteCluster::Start(std::move(*partitioning), ropt);
    if (!remote.ok()) {
      std::cerr << remote.status().ToString() << "\n";
      return 1;
    }
    const uint32_t num_sites = (*remote)->k();
    std::cout << "remote cluster: " << num_sites << " site processes up ("
              << FormatMillis((*remote)->loading_millis())
              << " ms max site load)\n";
    state = serve::ServingState::WrapBackend(std::move(*graph),
                                             std::move(*remote),
                                             /*generation=*/0, state_options);
  } else if (!flags.updates_file.empty()) {
    if (partitioning->kind() !=
        partition::PartitioningKind::kVertexDisjoint) {
      std::cerr << "--updates requires a vertex-disjoint partitioning\n";
      return 1;
    }
    Result<std::vector<dynamic::UpdateBatch>> loaded =
        dynamic::UpdateLog::LoadFile(flags.updates_file);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    updates = std::move(*loaded);
    if (flags.store == "segment") {
      // Out-of-core dynamic serving: every Capture composes these
      // immutable pack-time segments with the maintainer's delta sets
      // instead of rebuilding per-site indexes per published batch.
      Result<uint64_t> fingerprint =
          partition::PartitionIo::Fingerprint(flags.positional[1]);
      if (!fingerprint.ok()) {
        std::cerr << fingerprint.status().ToString() << "\n";
        return 1;
      }
      for (uint32_t i = 0; i < partitioning->k(); ++i) {
        storage::SegmentStore::OpenOptions open_options;
        open_options.expected_fingerprint = *fingerprint;
        Result<storage::SegmentStore> segment = storage::SegmentStore::Open(
            storage::SegmentPath(flags.positional[1], i), open_options);
        if (!segment.ok()) {
          std::cerr << segment.status().ToString()
                    << "\n(--store=segment needs `mpc pack` first)\n";
          return 1;
        }
        state_options.base_sources.push_back(
            std::make_shared<const storage::SegmentStore>(
                std::move(*segment)));
      }
    }
    dynamic::MaintainerOptions moptions;
    moptions.num_threads = flags.threads;
    moptions.mpc.base = flags.PartitionerOpts();
    moptions.background_repartition = flags.repartition == "background";
    ApplyPolicyFlags(flags, /*fallback=*/"never", &moptions);
    moptions.executor = state_options.executor;
    if (!flags.workload_file.empty()) {
      Result<std::vector<double>> weights =
          LoadWorkloadWeights(flags.workload_file, *graph);
      if (!weights.ok()) {
        std::cerr << weights.status().ToString() << "\n";
        return 1;
      }
      moptions.property_weights = std::move(*weights);
    }
    base_weights = moptions.property_weights;
    seed_properties.reserve(graph->num_properties());
    for (size_t p = 0; p < graph->num_properties(); ++p) {
      seed_properties.emplace(graph->PropertyName(
                                  static_cast<rdf::PropertyId>(p)),
                              static_cast<rdf::PropertyId>(p));
    }
    workload_counts.assign(graph->num_properties(), 0.0);
    maintainer = std::make_unique<dynamic::IncrementalMaintainer>(
        std::move(*graph), std::move(*partitioning), moptions);
    state = serve::ServingState::Capture(*maintainer, state_options);
  } else if (flags.store == "segment") {
    Result<exec::Cluster> opened = exec::Cluster::BuildFromSegments(
        std::move(*partitioning), flags.positional[1], flags.threads);
    if (!opened.ok()) {
      std::cerr << opened.status().ToString()
                << "\n(--store=segment needs `mpc pack` first)\n";
      return 1;
    }
    state = serve::ServingState::WrapBackend(
        std::move(*graph),
        std::make_unique<exec::Cluster>(std::move(*opened)),
        /*generation=*/0, state_options);
  } else {
    state = serve::ServingState::Build(std::move(*graph),
                                       std::move(*partitioning),
                                       /*generation=*/0, state_options);
  }

  serve::QueryServiceOptions service_options;
  service_options.num_workers = flags.concurrency;
  service_options.queue_capacity = flags.queue_cap;
  service_options.admission =
      flags.admission == "block"
          ? serve::QueryServiceOptions::Admission::kBlock
          : serve::QueryServiceOptions::Admission::kReject;
  if (flags.slow_query_ms > 0.0) {
    service_options.slow_query.threshold_ms = flags.slow_query_ms;
    service_options.slow_query.path =
        flags.slow_log.empty() ? "slow_queries.jsonl" : flags.slow_log;
  }
  if (maintainer != nullptr) {
    service_options.query_observer = [&](const sparql::QueryGraph& query) {
      // Each query counts a property once, mirroring
      // ComputeWorkloadPropertyWeights.
      std::vector<rdf::PropertyId> touched;
      for (const sparql::TriplePattern& pattern : query.patterns()) {
        if (pattern.predicate.is_variable()) continue;
        auto it = seed_properties.find(pattern.predicate.text);
        if (it == seed_properties.end()) continue;
        if (std::find(touched.begin(), touched.end(), it->second) ==
            touched.end()) {
          touched.push_back(it->second);
        }
      }
      if (touched.empty()) return;
      std::lock_guard<std::mutex> lock(workload_mutex);
      for (rdf::PropertyId p : touched) workload_counts[p] += 1.0;
    };
  }
  serve::QueryService service(std::move(state), service_options);

  // Live introspection: the snapshotter computes windowed stats over
  // the metrics registry; the admin socket serves them to `mpc top`,
  // and SIGUSR1 dumps them (plus the out files) mid-run.
  obs::Snapshotter snapshotter;
  snapshotter.Start();
  std::unique_ptr<serve::AdminServer> admin;
  if (!flags.admin_socket.empty()) {
    admin = std::make_unique<serve::AdminServer>(
        flags.admin_socket, [&snapshotter] { return snapshotter.StatsJson(); });
    Status st = admin->Start();
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    while (!stop_flusher.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (!g_flush.exchange(false, std::memory_order_relaxed)) continue;
      if (!flags.metrics_out.empty()) {
        (void)obs::MetricsRegistry::Default().WriteJson(flags.metrics_out);
      }
      if (!flags.trace_out.empty() && obs::TracingEnabled()) {
        (void)obs::WriteTrace(flags.trace_out);
      }
      snapshotter.SampleNow();
      std::cout << snapshotter.StatsJson() << "\n" << std::flush;
    }
  });

  // Update stream on a side thread: apply a batch, capture + publish a
  // new snapshot, sleep. Queries never block on this — in-flight ones
  // finish on the snapshot they started with.
  std::atomic<bool> stop_updates{false};
  std::atomic<size_t> batches_published{0};
  std::thread updater;
  if (maintainer != nullptr && !updates.empty()) {
    updater = std::thread([&] {
      for (const dynamic::UpdateBatch& batch : updates) {
        if (stop_updates.load()) break;
        {
          // Fold the live query counts into the weights the drift
          // threshold sees: base (--workload seed, default 1.0) + count.
          std::lock_guard<std::mutex> lock(workload_mutex);
          bool any = !base_weights.empty();
          for (double c : workload_counts) any = any || c > 0.0;
          if (any) {
            std::vector<double> weights(workload_counts.size());
            for (size_t p = 0; p < weights.size(); ++p) {
              weights[p] = (p < base_weights.size() ? base_weights[p] : 1.0) +
                           workload_counts[p];
            }
            maintainer->SetPropertyWeights(std::move(weights));
          }
        }
        maintainer->ApplyBatch(batch);
        service.Publish(serve::ServingState::Capture(*maintainer,
                                                     state_options));
        batches_published.fetch_add(1);
        if (flags.update_interval_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double,
                                                            std::milli>(
              flags.update_interval_ms));
        }
      }
    });
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::vector<std::future<Result<exec::QueryResponse>>> futures;
  futures.reserve(static_cast<size_t>(flags.repeat) * queries.size());
  size_t submitted = 0;
  for (uint32_t r = 0; r < flags.repeat && !g_drain.load(); ++r) {
    for (const std::string& text : queries) {
      // SIGINT/SIGTERM: stop admitting, let everything already submitted
      // finish below, flush, exit 0.
      if (g_drain.load()) break;
      if (flags.qps > 0.0) {
        // Open-loop pacing against the schedule, not the previous send,
        // so a slow burst does not permanently lower the offered rate.
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(submitted) / flags.qps));
        std::this_thread::sleep_until(due);
      }
      exec::QueryRequest request = exec::QueryRequest::FromText(text);
      request.options.deadline_ms = flags.deadline_ms;
      futures.push_back(service.Submit(std::move(request)));
      ++submitted;
    }
  }

  size_t ok = 0;
  size_t rejected = 0;
  size_t expired = 0;
  size_t failed = 0;
  size_t incomplete = 0;
  double min_bound = 1.0;
  size_t result_cache_hits = 0;
  size_t plan_cache_hits = 0;
  uint64_t rows = 0;
  uint64_t min_generation = UINT64_MAX;
  uint64_t max_generation = 0;
  for (auto& future : futures) {
    Result<exec::QueryResponse> response = future.get();
    if (response.ok()) {
      ++ok;
      rows += response->bindings.num_rows();
      result_cache_hits += response->stats.result_cache_hit ? 1 : 0;
      plan_cache_hits += response->stats.plan_cache_hit ? 1 : 0;
      min_generation = std::min(min_generation, response->generation);
      max_generation = std::max(max_generation, response->generation);
      if (!response->stats.complete) {
        ++incomplete;
        min_bound = std::min(min_bound, response->stats.completeness_bound);
      }
    } else if (response.status().code() == StatusCode::kUnavailable) {
      ++rejected;
    } else if (response.status().code() == StatusCode::kDeadlineExceeded) {
      ++expired;
    } else {
      if (failed == 0) {
        std::cerr << "first failure: " << response.status().ToString()
                  << "\n";
      }
      ++failed;
    }
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  stop_updates.store(true);
  if (updater.joinable()) updater.join();
  service.Shutdown();
  stop_flusher.store(true);
  if (flusher.joinable()) flusher.join();
  if (admin != nullptr) admin->Stop();
  snapshotter.Stop();
  if (g_drain.load()) {
    std::cout << "drained:  admission stopped by signal after "
              << FormatWithCommas(submitted) << " submissions\n";
  }

  auto& metrics = obs::MetricsRegistry::Default();
  auto& latency =
      metrics.HistogramRef("serve.latency_ms", obs::DefaultLatencyBoundsMs());
  auto& queue_wait = metrics.HistogramRef("serve.queue_wait_ms",
                                          obs::DefaultLatencyBoundsMs());
  std::cout << "served:   " << FormatWithCommas(ok) << "/"
            << FormatWithCommas(submitted) << " queries, "
            << FormatWithCommas(rows) << " rows, "
            << FormatDouble(wall_ms, 1) << " ms wall ("
            << FormatDouble(1000.0 * static_cast<double>(ok) / wall_ms, 1)
            << " qps)\n"
            << "rejected: " << rejected << "\n"
            << "expired:  " << expired << "\n"
            << "failed:   " << failed << "\n"
            << "caches:   " << FormatWithCommas(result_cache_hits)
            << " result hits, " << FormatWithCommas(plan_cache_hits)
            << " plan hits\n";
  if (incomplete > 0) {
    // Same "completeness>=" formatting as `mpc query`, so a degraded
    // remote serve run can be diffed against the simulator's
    // ComputeReplicaCoverage-derived bound (scripts/check.sh does).
    std::cout << "partial:  " << FormatWithCommas(incomplete)
              << " best-effort answers, completeness>="
              << FormatDouble(100.0 * min_bound, 1) << "%\n";
  }
  if (ok > 0) {
    std::cout << "gens:     " << min_generation << ".." << max_generation
              << " (" << batches_published.load()
              << " update batches published)\n";
  }
  if (maintainer != nullptr && flags.migrate) {
    // Updater joined above: the maintainer is quiesced, so reading the
    // drift here is race-free. The greppable adaptive-serving summary.
    const dynamic::DriftMetrics adaptive = maintainer->drift();
    std::cout << "migrated: " << FormatWithCommas(adaptive.migrations)
              << " hot-vertex moves, " << maintainer->repartition_count()
              << " repartitions, weighted |L_cross| "
              << FormatDouble(adaptive.weighted_crossing_properties, 2)
              << " (seed "
              << FormatDouble(adaptive.seed_weighted_crossing_properties, 2)
              << ")\n";
  }
  std::cout << "latency:  p50 " << FormatDouble(latency.Quantile(0.5), 2)
            << " ms, p95 " << FormatDouble(latency.Quantile(0.95), 2)
            << " ms, p99 " << FormatDouble(latency.Quantile(0.99), 2)
            << " ms (queue wait p99 "
            << FormatDouble(queue_wait.Quantile(0.99), 2) << " ms)\n";
  if (service.slow_query_log() != nullptr) {
    std::cout << "slow:     "
              << FormatWithCommas(service.slow_query_log()->entries_written())
              << " queries over "
              << FormatDouble(flags.slow_query_ms, 1) << " ms logged to "
              << service.slow_query_log()->options().path << "\n";
  }
  return failed > 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// mpc top: live serving introspection over the admin socket.

/// counters[name].field from the stats JSON, or fallback when absent.
double StatsField(const obs::JsonValue& root, const char* section,
                  const std::string& name, const char* field,
                  double fallback = 0.0) {
  const obs::JsonValue* sec = root.Find(section);
  if (sec == nullptr) return fallback;
  const obs::JsonValue* entry = sec->Find(name);
  if (entry == nullptr) return fallback;
  if (entry->is_number()) return entry->number;  // gauges are bare numbers
  const obs::JsonValue* value = entry->Find(field);
  return value != nullptr && value->is_number() ? value->number : fallback;
}

bool StatsHas(const obs::JsonValue& root, const char* section,
              const std::string& name) {
  const obs::JsonValue* sec = root.Find(section);
  return sec != nullptr && sec->Find(name) != nullptr;
}

/// Windowed cache-hit percentage from a pair of hit/miss counters.
std::string HitRate(const obs::JsonValue& root, const std::string& prefix) {
  const double hits = StatsField(root, "counters", prefix + ".hits",
                                 "window_delta");
  const double misses = StatsField(root, "counters", prefix + ".misses",
                                   "window_delta");
  if (hits + misses <= 0.0) return "-";
  return FormatDouble(100.0 * hits / (hits + misses), 1) + "%";
}

void RenderTop(const obs::JsonValue& root) {
  const obs::JsonValue* up = root.Find("uptime_ms");
  const obs::JsonValue* win = root.Find("window_ms");
  std::cout << "mpc top — uptime "
            << FormatDouble((up != nullptr ? up->number : 0.0) / 1000.0, 1)
            << " s, window "
            << FormatDouble((win != nullptr ? win->number : 0.0) / 1000.0, 1)
            << " s\n";
  std::cout << "queries   "
            << FormatWithCommas(static_cast<uint64_t>(
                   StatsField(root, "counters", "serve.queries", "value")))
            << " total, "
            << FormatDouble(StatsField(root, "counters", "serve.queries",
                                       "rate_per_s"), 1)
            << " qps | queue depth "
            << static_cast<uint64_t>(
                   StatsField(root, "gauges", "serve.queue_depth", ""))
            << "\n";
  std::cout << "latency   p50 "
            << FormatDouble(StatsField(root, "histograms", "serve.latency_ms",
                                       "p50"), 2)
            << " ms, p95 "
            << FormatDouble(StatsField(root, "histograms", "serve.latency_ms",
                                       "p95"), 2)
            << " ms, p99 "
            << FormatDouble(StatsField(root, "histograms", "serve.latency_ms",
                                       "p99"), 2)
            << " ms (window) | queue wait p99 "
            << FormatDouble(StatsField(root, "histograms",
                                       "serve.queue_wait_ms", "p99"), 2)
            << " ms\n";
  std::cout << "admission "
            << FormatWithCommas(static_cast<uint64_t>(
                   StatsField(root, "counters", "serve.admitted", "value")))
            << " admitted, "
            << static_cast<uint64_t>(
                   StatsField(root, "counters", "serve.rejected", "value"))
            << " rejected, "
            << static_cast<uint64_t>(StatsField(root, "counters",
                                                "serve.deadline_expired",
                                                "value"))
            << " expired\n";
  std::cout << "caches    plan " << HitRate(root, "serve.plan_cache")
            << " hit, result " << HitRate(root, "serve.result_cache")
            << " hit (window)\n";
  if (StatsHas(root, "gauges", "net.supervisor.alive")) {
    std::cout << "sites     "
              << static_cast<uint64_t>(StatsField(root, "gauges",
                                                  "net.supervisor.alive", ""))
              << " up | restarts "
              << static_cast<uint64_t>(StatsField(root, "counters",
                                                  "net.supervisor.restarts",
                                                  "value"))
              << ", deaths "
              << static_cast<uint64_t>(StatsField(root, "counters",
                                                  "net.supervisor.deaths",
                                                  "value"))
              << ", gave up "
              << static_cast<uint64_t>(StatsField(root, "counters",
                                                  "net.supervisor.gave_up",
                                                  "value"))
              << " | heartbeat p99 "
              << FormatDouble(StatsField(root, "histograms",
                                         "net.supervisor.heartbeat_ms",
                                         "p99"), 2)
              << " ms\n";
    const obs::JsonValue* counters = root.Find("counters");
    if (counters != nullptr) {
      for (const auto& [name, value] : counters->object) {
        const std::string_view prefix = "net.supervisor.site_";
        if (name.compare(0, prefix.size(), prefix) != 0) continue;
        if (name.size() < prefix.size() ||
            name.find(".restarts") == std::string::npos) {
          continue;
        }
        const obs::JsonValue* v = value.Find("value");
        if (v != nullptr && v->number > 0.0) {
          std::cout << "          " << name << " = "
                    << static_cast<uint64_t>(v->number) << "\n";
        }
      }
    }
  }
  if (StatsHas(root, "counters", "storage.segment.blocks_decoded") ||
      StatsHas(root, "counters", "storage.segment.blocks_pruned")) {
    std::cout << "storage   blocks decoded "
              << FormatWithCommas(static_cast<uint64_t>(
                     StatsField(root, "counters",
                                "storage.segment.blocks_decoded", "value")))
              << " ("
              << FormatDouble(StatsField(root, "counters",
                                         "storage.segment.blocks_decoded",
                                         "rate_per_s"), 1)
              << "/s), pruned "
              << FormatWithCommas(static_cast<uint64_t>(
                     StatsField(root, "counters",
                                "storage.segment.blocks_pruned", "value")))
              << ", corrupt "
              << static_cast<uint64_t>(
                     StatsField(root, "counters",
                                "storage.segment.corruption_detected",
                                "value"))
              << "\n";
  }
}

int CmdTop(const Flags& flags) {
  if (!flags.positional.empty()) return Usage();
  if (flags.socket_path.empty()) {
    std::cerr << "top requires --socket=ADMIN_PATH (the serve process's "
                 "--admin-socket)\n";
    return 2;
  }
  if (flags.json) {
    Result<std::string> stats = serve::FetchStats(flags.socket_path, 5000.0);
    if (!stats.ok()) {
      std::cerr << stats.status().ToString() << "\n";
      return 1;
    }
    std::cout << *stats << "\n";
    return 0;
  }
  InstallDrainHandlers();
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (uint32_t shown = 0; !g_drain.load(std::memory_order_relaxed);) {
    Result<std::string> stats = serve::FetchStats(flags.socket_path, 5000.0);
    if (!stats.ok()) {
      std::cerr << stats.status().ToString() << "\n";
      return 1;
    }
    Result<obs::JsonValue> parsed = obs::ParseJson(*stats);
    if (!parsed.ok()) {
      std::cerr << "bad stats payload: " << parsed.status().ToString() << "\n";
      return 1;
    }
    if (tty) std::cout << "\x1b[H\x1b[2J";
    RenderTop(*parsed);
    std::cout << std::flush;
    if (++shown >= flags.count && flags.count > 0) break;
    // Sleep in short slices so SIGINT lands promptly.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(flags.interval_ms));
    while (!g_drain.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}

}  // namespace

int RunCommand(const std::string& command, const Flags& flags) {
  if (command == "stats") return CmdStats(flags);
  if (command == "partition") return CmdPartition(flags);
  if (command == "classify") return CmdClassifyOrQuery(flags, false);
  if (command == "explain") return CmdExplain(flags);
  if (command == "pack") return CmdPack(flags);
  if (command == "query") return CmdClassifyOrQuery(flags, true);
  if (command == "update") return CmdUpdate(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "site") return CmdSite(flags);
  if (command == "top") return CmdTop(flags);
  return Usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Result<Flags> flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 2;
  }

  const bool tracing = !flags->trace_out.empty() || flags->trace_summary;
  if (tracing) obs::StartTracing();

  int exit_code = RunCommand(command, *flags);

  if (tracing) {
    obs::StopTracing();
    if (!flags->trace_out.empty()) {
      Status st = obs::WriteTrace(flags->trace_out);
      if (!st.ok()) {
        std::cerr << st.ToString() << "\n";
        if (exit_code == 0) exit_code = 1;
      } else {
        std::cout << "trace written to: " << flags->trace_out << "\n";
      }
    }
    if (flags->trace_summary) std::cout << obs::TraceToTextTree();
  }
  if (!flags->metrics_out.empty()) {
    Status st =
        obs::MetricsRegistry::Default().WriteJson(flags->metrics_out);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      if (exit_code == 0) exit_code = 1;
    } else {
      std::cout << "metrics written to: " << flags->metrics_out << "\n";
    }
  }
  return exit_code;
}

// trace_check — validates an exported trace or metrics JSON file.
//
//   trace_check trace <file.json> [required-span-name...]
//   trace_check merged <file.json> [required-span-name...]
//   trace_check metrics <file.json> [required-counter-name...]
//
// Used by scripts/check.sh to smoke-test the CLI's --trace-out /
// --metrics-out output: the file must parse with the obs JSON parser,
// have the expected top-level shape (traceEvents array of complete
// events / counters+gauges+histograms maps), and contain every span or
// counter named on the command line. Exit 0 on success, 1 with a
// message naming the first problem otherwise.
//
// `merged` adds the distributed-trace invariants for a per-query trace
// assembled across processes (the slow-query log's retained traces):
// every event carries args.trace_id and they all agree, at least two
// distinct pids appear (coordinator + at least one site worker), and
// every nonzero args.parent_id resolves to some event's args.span_id —
// ingesting remote spans must not orphan any parent edge.

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using mpc::obs::JsonValue;

int Fail(const std::string& message) {
  std::cerr << "trace_check: " << message << "\n";
  return 1;
}

int CheckTrace(const JsonValue& root, int argc, char** argv, int first) {
  if (root.type != JsonValue::Type::kObject) {
    return Fail("top level is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Fail("missing traceEvents array");
  }
  std::set<std::string> names;
  for (const JsonValue& event : events->array) {
    if (event.type != JsonValue::Type::kObject) {
      return Fail("traceEvents element is not an object");
    }
    const JsonValue* name = event.Find("name");
    const JsonValue* phase = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    if (name == nullptr || name->type != JsonValue::Type::kString) {
      return Fail("event without a string name");
    }
    if (phase == nullptr || phase->type != JsonValue::Type::kString ||
        phase->str != "X") {
      return Fail("event '" + name->str + "' is not a complete event");
    }
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber ||
        dur == nullptr || dur->type != JsonValue::Type::kNumber) {
      return Fail("event '" + name->str + "' lacks numeric ts/dur");
    }
    names.insert(name->str);
  }
  for (int i = first; i < argc; ++i) {
    if (names.count(argv[i]) == 0) {
      return Fail("no span named '" + std::string(argv[i]) + "' (saw " +
                  std::to_string(names.size()) + " distinct names)");
    }
  }
  std::cout << "trace ok: " << events->array.size() << " events, "
            << names.size() << " distinct spans\n";
  return 0;
}

int CheckMerged(const JsonValue& root, int argc, char** argv, int first) {
  // Shape and required names first — same contract as `trace`.
  if (int rc = CheckTrace(root, argc, argv, first); rc != 0) return rc;
  const JsonValue& events = *root.Find("traceEvents");
  if (events.array.empty()) return Fail("merged trace has no events");

  std::set<double> pids;
  std::set<double> span_ids;
  std::set<double> parent_ids;
  double trace_id = 0.0;
  bool have_trace_id = false;
  for (const JsonValue& event : events.array) {
    const JsonValue* pid = event.Find("pid");
    if (pid == nullptr || pid->type != JsonValue::Type::kNumber) {
      return Fail("event without a numeric pid");
    }
    pids.insert(pid->number);
    const JsonValue* args = event.Find("args");
    if (args == nullptr || args->type != JsonValue::Type::kObject) {
      return Fail("event without an args object");
    }
    const JsonValue* tid = args->Find("trace_id");
    if (tid == nullptr || tid->type != JsonValue::Type::kNumber) {
      return Fail("event without args.trace_id — not a per-query trace");
    }
    if (!have_trace_id) {
      trace_id = tid->number;
      have_trace_id = true;
    } else if (tid->number != trace_id) {
      return Fail("events from more than one trace id in a merged trace");
    }
    const JsonValue* span = args->Find("span_id");
    const JsonValue* parent = args->Find("parent_id");
    if (span == nullptr || span->type != JsonValue::Type::kNumber ||
        parent == nullptr || parent->type != JsonValue::Type::kNumber) {
      return Fail("event without numeric args.span_id/parent_id");
    }
    span_ids.insert(span->number);
    if (parent->number != 0.0) parent_ids.insert(parent->number);
  }
  if (pids.size() < 2) {
    return Fail("merged trace has " + std::to_string(pids.size()) +
                " distinct pid(s); want >= 2 (coordinator + site worker)");
  }
  for (double parent : parent_ids) {
    if (span_ids.count(parent) == 0) {
      return Fail("orphan parent edge: no span with id " +
                  std::to_string(static_cast<unsigned long long>(parent)));
    }
  }
  std::cout << "merged ok: one trace id across " << pids.size()
            << " processes, " << span_ids.size()
            << " spans, every parent edge resolves\n";
  return 0;
}

int CheckMetrics(const JsonValue& root, int argc, char** argv, int first) {
  if (root.type != JsonValue::Type::kObject) {
    return Fail("top level is not an object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* map = root.Find(section);
    if (map == nullptr || map->type != JsonValue::Type::kObject) {
      return Fail(std::string("missing ") + section + " object");
    }
  }
  const JsonValue& counters = *root.Find("counters");
  for (int i = first; i < argc; ++i) {
    if (counters.Find(argv[i]) == nullptr) {
      return Fail("no counter named '" + std::string(argv[i]) + "'");
    }
  }
  std::cout << "metrics ok: " << counters.object.size() << " counters\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr
        << "usage: trace_check trace|merged|metrics <file.json> [names...]\n";
    return 2;
  }
  const std::string mode = argv[1];
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) return Fail(std::string("cannot open ") + argv[2]);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  mpc::Result<JsonValue> parsed = mpc::obs::ParseJson(text);
  if (!parsed.ok()) return Fail(parsed.status().ToString());

  if (mode == "trace") return CheckTrace(*parsed, argc, argv, 3);
  if (mode == "merged") return CheckMerged(*parsed, argc, argv, 3);
  if (mode == "metrics") return CheckMetrics(*parsed, argc, argv, 3);
  std::cerr << "unknown mode: " << mode << "\n";
  return 2;
}

#!/usr/bin/env bash
# Tier-1 verification: build + full ctest, three times — the default
# build, an AddressSanitizer build, and an UndefinedBehaviorSanitizer
# build — so the logic, the memory behavior and the arithmetic of the
# fault-injection and dynamic-maintenance paths are all exercised. The
# fault determinism test
# (same seed => bit-identical stats at any thread count) runs in both
# configurations; it is the one most likely to catch a nondeterministic
# recovery path.
#
# On top of that:
#  - an observability smoke run drives the CLI with --trace-out /
#    --metrics-out on `mpc partition` and `mpc update` and validates the
#    exported JSON (shape + required span/counter names) with
#    tools/trace_check;
#  - a crash-recovery smoke runs a journaled `mpc update`, SIGKILLs it
#    mid-stream, recovers with --recover, and diffs the recovered output
#    against an uninterrupted run;
#  - a remote-cluster chaos smoke runs `mpc serve --remote` over 4 real
#    `mpc site` worker processes, SIGKILLs one mid-reply, and checks both
#    recovery via supervisor respawn and coverage-bounded best-effort
#    degradation, plus SIGTERM graceful drain of worker and coordinator;
#  - a live-introspection smoke drives `mpc top` / SIGUSR1 / the
#    slow-query log against a chaos remote serve run and validates a
#    retained per-query trace with `trace_check merged`;
#  - an adaptive-serving smoke replays a skewed workload through
#    `mpc serve --migrate` and checks that hot-vertex migration absorbs
#    the induced drift without a single full repartition;
#  - the tracer and metrics tests run under ThreadSanitizer, since their
#    whole point is lock-free recording from concurrent pool threads.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configure+build: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== fault determinism test: ${dir} ==="
  "${dir}/tests/fault_tolerance_test" \
    --gtest_filter='FaultToleranceTest.SameSeedSameStatsAtAnyThreadCount'
  echo "=== full test suite: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

# Observability smoke: partition + stream updates with tracing on, then
# check the trace JSON parses as Chrome trace_event and names the
# pipeline stages, and the metrics JSON carries the selector/DSF and
# maintenance counters.
trace_smoke() {
  local dir="$1"
  echo "=== observability smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a> <p:knows> <s:b> .
<s:b> <p:knows> <s:c> .
<s:c> <p:knows> <s:a> .
<s:a> <p:likes> <s:d> .
<s:d> <p:likes> <s:e> .
<s:e> <p:worksAt> <s:f> .
<s:f> <p:worksAt> <s:g> .
<s:g> <p:knows> <s:h> .
<s:h> <p:likes> <s:a> .
<s:b> <p:worksAt> <s:f> .
<s:c> <p:likes> <s:e> .
<s:d> <p:knows> <s:g> .
EOF
  cat > "${tmp}/updates.ulog" <<'EOF'
+ <s:z> <p:new> <s:a> .
+ <s:z> <p:new> <s:b> .

- <s:a> <p:likes> <s:d> .
+ <s:y> <p:knows> <s:z> .
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=2 \
    --trace-out="${tmp}/trace.json" --metrics-out="${tmp}/metrics.json"
  "${dir}/tools/trace_check" trace "${tmp}/trace.json" \
    rdf.parse partition.run mpc.stage.select mpc.stage.coarsen \
    mpc.stage.uncoarsen mpc.select.iteration partition.materialize
  "${dir}/tools/trace_check" metrics "${tmp}/metrics.json" \
    mpc.selector.iterations mpc.dsf.union_edges partition.runs
  "${dir}/tools/mpc" update "${tmp}/g.nt" "${tmp}/part" \
    "${tmp}/updates.ulog" \
    --trace-out="${tmp}/utrace.json" --metrics-out="${tmp}/umetrics.json"
  "${dir}/tools/trace_check" trace "${tmp}/utrace.json" dynamic.apply_batch
  "${dir}/tools/trace_check" metrics "${tmp}/umetrics.json" \
    dynamic.batches dynamic.inserts dynamic.deletes
  echo "observability smoke passed"
}

# Serving smoke: replay a query file through `mpc serve` at concurrency
# 16 with a concurrent update stream. At this low load (bounded queue of
# 1024, 200 queries) nothing may be rejected or failed, and the exported
# metrics JSON must carry the serve.* counters. Run against the TSan
# build too, so the admission queue, snapshot publishing and the two
# caches get raced under a real data-race detector.
serve_smoke() {
  local dir="$1"
  echo "=== serving smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a> <p:knows> <s:b> .
<s:b> <p:knows> <s:c> .
<s:c> <p:knows> <s:a> .
<s:a> <p:likes> <s:d> .
<s:d> <p:likes> <s:e> .
<s:e> <p:worksAt> <s:f> .
<s:f> <p:worksAt> <s:g> .
<s:g> <p:knows> <s:h> .
<s:h> <p:likes> <s:a> .
<s:b> <p:worksAt> <s:f> .
<s:c> <p:likes> <s:e> .
<s:d> <p:knows> <s:g> .
EOF
  cat > "${tmp}/q.txt" <<'EOF'
SELECT * WHERE { ?x <p:knows> ?y . }
SELECT * WHERE { ?x <p:likes> ?y . }
SELECT * WHERE { ?x <p:knows> ?y . ?y <p:likes> ?z . }
SELECT * WHERE { ?x <p:worksAt> ?y . }
EOF
  cat > "${tmp}/updates.ulog" <<'EOF'
+ <s:z> <p:new> <s:a> .
+ <s:z> <p:new> <s:b> .

- <s:a> <p:likes> <s:d> .
+ <s:y> <p:knows> <s:z> .
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=2
  local out
  out="$("${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --concurrency=16 --repeat=50 \
    --updates="${tmp}/updates.ulog" --update-interval-ms=1 \
    --metrics-out="${tmp}/metrics.json")"
  echo "${out}"
  grep -q "^rejected: 0$" <<< "${out}"
  grep -q "^failed:   0$" <<< "${out}"
  grep -q "^served:   200/200" <<< "${out}"
  "${dir}/tools/trace_check" metrics "${tmp}/metrics.json" \
    serve.admitted serve.queries serve.result_cache.hits \
    serve.plan_cache.misses exec.queries
  echo "serving smoke passed"
}

# Adaptive-serving smoke: a skewed workload file makes one internal
# property hot (weight 21 vs 1), then the update stream attaches a new
# vertex whose edges all use that hot property into the other site. The
# integer |L_cross| growth (2) stays under the slack (4), so only the
# WEIGHTED threshold fires — and hot-vertex migration must absorb it by
# moving the one misplaced vertex, with zero full repartitions. The
# replay is qps-paced so both update batches land while queries are
# still in flight (serve stops the updater once the replay drains).
adaptive_smoke() {
  local dir="$1"
  echo "=== adaptive-serving smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a1> <p:p> <s:a2> .
<s:a2> <p:p> <s:a3> .
<s:a3> <p:p> <s:a1> .
<s:b1> <p:p> <s:b2> .
<s:b2> <p:p> <s:b3> .
<s:b3> <p:p> <s:b1> .
<s:b1> <p:hot> <s:b2> .
EOF
  cat > "${tmp}/q.txt" <<'EOF'
SELECT * WHERE { ?x <p:hot> ?y . }
SELECT * WHERE { ?x <p:p> ?y . }
EOF
  for _ in $(seq 1 20); do
    echo 'SELECT * WHERE { ?x <p:hot> ?y . }'
  done > "${tmp}/hot.workload"
  cat > "${tmp}/updates.ulog" <<'EOF'
+ <s:mig> <p:anchor> <s:a1> .

+ <s:mig> <p:hot> <s:b1> .
+ <s:mig> <p:hot> <s:b2> .
+ <s:mig> <p:hot> <s:b3> .
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=2
  local out
  out="$("${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --concurrency=4 --repeat=25 --qps=200 \
    --updates="${tmp}/updates.ulog" --update-interval-ms=1 \
    --policy=threshold --min-lcross-slack=4 \
    --workload="${tmp}/hot.workload" --migrate --epsilon=0.3)"
  echo "${out}"
  grep -q "^failed:   0$" <<< "${out}"
  grep -q "(2 update batches published)" <<< "${out}"
  # >= 1 hot-vertex move and zero repartitions: the cheaper escalation
  # level absorbed the drift on its own.
  grep -Eq "^migrated: [1-9][0-9,]* hot-vertex moves, 0 repartitions" \
    <<< "${out}"
  grep -q "weighted |L_cross| 1.00 (seed 0.00)" <<< "${out}"
  echo "adaptive-serving smoke passed"
}

# Chaos smoke for the real multi-process runtime: `mpc serve --remote`
# spawns 4 `mpc site` worker processes over socket RPC.
#  A) One worker SIGKILLs itself mid-reply (--kill-site/--kill-after-
#     queries); the supervisor respawns it and the retried RPC completes
#     every query: zero failures, exit 0.
#  B) Same crash with the restart budget pinned to zero and best-effort
#     enabled: the coordinator must degrade cleanly (exit 0) and report a
#     completeness bound, which must equal the ComputeReplicaCoverage
#     bound the in-process simulator prints for the same dead site.
#  C) Graceful drain: a standalone site worker and a streaming remote
#     coordinator both exit 0 on SIGTERM, finishing in-flight work.
chaos_smoke() {
  local dir="$1"
  echo "=== remote-cluster chaos smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a> <p:knows> <s:b> .
<s:b> <p:knows> <s:c> .
<s:c> <p:knows> <s:a> .
<s:a> <p:likes> <s:d> .
<s:d> <p:likes> <s:e> .
<s:e> <p:worksAt> <s:f> .
<s:f> <p:worksAt> <s:g> .
<s:g> <p:knows> <s:h> .
<s:h> <p:likes> <s:a> .
<s:b> <p:worksAt> <s:f> .
<s:c> <p:likes> <s:e> .
<s:d> <p:knows> <s:g> .
EOF
  cat > "${tmp}/q.txt" <<'EOF'
SELECT * WHERE { ?x <p:knows> ?y . }
SELECT * WHERE { ?x <p:likes> ?y . }
SELECT * WHERE { ?x <p:knows> ?y . ?y <p:likes> ?z . }
SELECT * WHERE { ?x <p:worksAt> ?y . }
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=4

  echo "--- A: mid-reply SIGKILL survived via supervisor respawn ---"
  local out
  out="$("${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --remote --socket-dir="${tmp}" \
    --concurrency=4 --repeat=25 \
    --kill-site=1 --kill-after-queries=2 \
    --retries=3 --retry-backoff-ms=300)"
  echo "${out}"
  grep -q "remote cluster: 4 site processes up" <<< "${out}"
  grep -q "^failed:   0$" <<< "${out}"
  grep -q "^served:   100/100" <<< "${out}"

  echo "--- B: exhausted restart budget -> coverage-bounded best effort ---"
  out="$("${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --remote --socket-dir="${tmp}" \
    --concurrency=4 --repeat=10 \
    --kill-site=1 --kill-after-queries=1 --max-restarts=0 \
    --partial-results=best-effort --retries=1 --retry-backoff-ms=20)"
  echo "${out}"
  grep -q "^failed:   0$" <<< "${out}"
  local remote_bound sim_bound
  remote_bound="$(grep -oE 'completeness>=[0-9.]+%' <<< "${out}")"
  [[ -n "${remote_bound}" ]]
  # The simulator computes its bound from ComputeReplicaCoverage over the
  # same partitioning; the real fleet must report the identical figure.
  sim_bound="$("${dir}/tools/mpc" query "${tmp}/g.nt" "${tmp}/part" \
    'SELECT * WHERE { ?x <p:knows> ?y . }' \
    --fail-sites=1 --partial-results=best-effort \
    | grep -oE 'completeness>=[0-9.]+%')"
  echo "remote bound: ${remote_bound}  simulator bound: ${sim_bound}"
  [[ "${remote_bound}" == "${sim_bound}" ]]

  echo "--- C: SIGTERM graceful drain (worker + coordinator) ---"
  "${dir}/tools/mpc" site "${tmp}/g.nt" "${tmp}/part" \
    --site=0 --socket="${tmp}/drain.sock" > "${tmp}/site.out" &
  local site_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${tmp}/drain.sock" ]] && break
    sleep 0.1
  done
  kill -TERM "${site_pid}"
  local rc=0
  wait "${site_pid}" || rc=$?
  if [[ "${rc}" -ne 0 ]]; then
    echo "site worker exited ${rc} on SIGTERM (want 0)" >&2
    return 1
  fi
  grep -q "drained" "${tmp}/site.out"

  "${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --remote --socket-dir="${tmp}" \
    --concurrency=4 --repeat=100000 --qps=50 > "${tmp}/serve.out" &
  local serve_pid=$!
  sleep 3
  kill -TERM "${serve_pid}"
  rc=0
  wait "${serve_pid}" || rc=$?
  if [[ "${rc}" -ne 0 ]]; then
    echo "coordinator exited ${rc} on SIGTERM (want 0)" >&2
    cat "${tmp}/serve.out" >&2
    return 1
  fi
  grep -q "^drained:" "${tmp}/serve.out"
  grep -q "^failed:   0$" "${tmp}/serve.out"
  echo "remote-cluster chaos smoke passed"
}

# Out-of-core segment smoke: pack a partitioning into .mpcseg segments,
# validate them with segment_check, and require `mpc query` to print the
# identical classification + result rows on the segment backend as on
# the in-memory backend for the whole query set (only the timing figures
# may differ). Then serve the query mix with a concurrent update stream
# on --store=segment (exercises the segment-base + delta-overlay snapshot
# path) and run the acceptance bench at reduced scale, which asserts the
# >=5x cold-start and >=2x footprint ratios and query bit-identity on
# LUBM. (The storage unit/fuzz tests also run under asan/ubsan via the
# full ctest suites.)
segment_smoke() {
  local dir="$1"
  echo "=== segment-store smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a> <p:knows> <s:b> .
<s:b> <p:knows> <s:c> .
<s:c> <p:knows> <s:a> .
<s:a> <p:likes> <s:d> .
<s:d> <p:likes> <s:e> .
<s:e> <p:worksAt> <s:f> .
<s:f> <p:worksAt> <s:g> .
<s:g> <p:knows> <s:h> .
<s:h> <p:likes> <s:a> .
<s:b> <p:worksAt> <s:f> .
<s:c> <p:likes> <s:e> .
<s:d> <p:knows> <s:g> .
EOF
  cat > "${tmp}/q.txt" <<'EOF'
SELECT * WHERE { ?x <p:knows> ?y . }
SELECT * WHERE { ?x <p:likes> ?y . }
SELECT * WHERE { ?x <p:knows> ?y . ?y <p:likes> ?z . }
SELECT * WHERE { ?x <p:worksAt> ?y . }
EOF
  cat > "${tmp}/updates.ulog" <<'EOF'
+ <s:z> <p:new> <s:a> .
+ <s:z> <p:new> <s:b> .

- <s:a> <p:likes> <s:d> .
+ <s:y> <p:knows> <s:z> .
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=2
  "${dir}/tools/mpc" pack "${tmp}/g.nt" "${tmp}/part" --block-size=4096
  "${dir}/tools/segment_check" "${tmp}/part"

  # Full query set: everything but the timing line must be identical.
  while IFS= read -r q; do
    "${dir}/tools/mpc" query "${tmp}/g.nt" "${tmp}/part" "${q}" \
      | sed 's/  (QDT.*//' > "${tmp}/memory.out"
    "${dir}/tools/mpc" query "${tmp}/g.nt" "${tmp}/part" "${q}" \
      --store=segment | sed 's/  (QDT.*//' > "${tmp}/segment.out"
    diff "${tmp}/memory.out" "${tmp}/segment.out"
  done < "${tmp}/q.txt"

  local out
  out="$("${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --concurrency=16 --repeat=50 \
    --updates="${tmp}/updates.ulog" --update-interval-ms=1 \
    --store=segment)"
  echo "${out}"
  grep -q "^rejected: 0$" <<< "${out}"
  grep -q "^failed:   0$" <<< "${out}"
  grep -q "^served:   200/200" <<< "${out}"

  "${dir}/bench/segment_store" 0.5
  echo "segment-store smoke passed"
}

# Crash-recovery smoke: stream updates with a write-ahead journal, kill
# the process mid-stream (SIGKILL via --crash-after, exit 137), recover
# with --recover, and require the recovered final partitioning to be
# byte-identical to an uninterrupted run. (The journal/checkpoint unit
# tests also run under asan/ubsan via the full ctest suites above.)
recovery_smoke() {
  local dir="$1"
  echo "=== crash-recovery smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a> <p:knows> <s:b> .
<s:b> <p:knows> <s:c> .
<s:c> <p:knows> <s:a> .
<s:a> <p:likes> <s:d> .
<s:d> <p:likes> <s:e> .
<s:e> <p:worksAt> <s:f> .
<s:f> <p:worksAt> <s:g> .
<s:g> <p:knows> <s:h> .
<s:h> <p:likes> <s:a> .
<s:b> <p:worksAt> <s:f> .
<s:c> <p:likes> <s:e> .
<s:d> <p:knows> <s:g> .
EOF
  cat > "${tmp}/updates.ulog" <<'EOF'
+ <s:z> <p:new> <s:a> .
+ <s:z> <p:new> <s:b> .

- <s:a> <p:likes> <s:d> .
+ <s:y> <p:knows> <s:z> .

+ <s:q> <p:new> <s:y> .
- <s:b> <p:worksAt> <s:f> .

+ <s:r> <p:likes> <s:q> .
+ <s:r> <p:new> <s:z> .
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=2
  local rc=0
  "${dir}/tools/mpc" update "${tmp}/g.nt" "${tmp}/part" \
    "${tmp}/updates.ulog" --journal-dir="${tmp}/journal" \
    --checkpoint-every=2 --crash-after=2 || rc=$?
  if [[ "${rc}" -ne 137 ]]; then
    echo "expected SIGKILL exit 137 from --crash-after, got ${rc}" >&2
    return 1
  fi
  "${dir}/tools/mpc" update "${tmp}/g.nt" "${tmp}/part" \
    "${tmp}/updates.ulog" --journal-dir="${tmp}/journal" \
    --checkpoint-every=2 --recover --out="${tmp}/out-recovered"
  "${dir}/tools/mpc" update "${tmp}/g.nt" "${tmp}/part" \
    "${tmp}/updates.ulog" --out="${tmp}/out-clean"
  diff -r "${tmp}/out-recovered" "${tmp}/out-clean"
  echo "crash-recovery smoke passed"
}

# Live-introspection smoke over the real multi-process runtime: a remote
# serve run with chaos (one worker SIGKILLs itself) plus the full
# observability surface:
#  - `mpc top --json` against the admin socket must report the windowed
#    stats, including the supervisor's restart counter for the killed
#    site and the serve.* counters;
#  - SIGUSR1 must flush a stats snapshot to the coordinator's stdout
#    without terminating it;
#  - every query runs over the (absurdly low) slow-query threshold, so
#    the slow-query JSONL must fill with entries carrying shape keys and
#    per-site attempt timelines;
#  - a retained per-query trace must pass `trace_check merged`: one
#    trace id across >= 2 processes, serve.query + exec.rpc.attempt +
#    site.eval present, no orphan parent edges;
#  - SIGTERM still drains gracefully with the admin socket up.
obs_smoke() {
  local dir="$1"
  echo "=== live-introspection smoke: ${dir} ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  cat > "${tmp}/g.nt" <<'EOF'
<s:a> <p:knows> <s:b> .
<s:b> <p:knows> <s:c> .
<s:c> <p:knows> <s:a> .
<s:a> <p:likes> <s:d> .
<s:d> <p:likes> <s:e> .
<s:e> <p:worksAt> <s:f> .
<s:f> <p:worksAt> <s:g> .
<s:g> <p:knows> <s:h> .
<s:h> <p:likes> <s:a> .
<s:b> <p:worksAt> <s:f> .
<s:c> <p:likes> <s:e> .
<s:d> <p:knows> <s:g> .
EOF
  cat > "${tmp}/q.txt" <<'EOF'
SELECT * WHERE { ?x <p:knows> ?y . }
SELECT * WHERE { ?x <p:likes> ?y . }
SELECT * WHERE { ?x <p:knows> ?y . ?y <p:likes> ?z . }
SELECT * WHERE { ?x <p:worksAt> ?y . }
EOF
  "${dir}/tools/mpc" partition "${tmp}/g.nt" "${tmp}/part" --k=4

  "${dir}/tools/mpc" serve "${tmp}/g.nt" "${tmp}/part" \
    --queries="${tmp}/q.txt" --remote --socket-dir="${tmp}" \
    --concurrency=4 --repeat=100000 --qps=50 \
    --kill-site=1 --kill-after-queries=2 \
    --retries=3 --retry-backoff-ms=300 \
    --admin-socket="${tmp}/admin.sock" \
    --slow-query-ms=0.001 --slow-log="${tmp}/slow.jsonl" \
    > "${tmp}/serve.out" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${tmp}/admin.sock" ]] && break
    sleep 0.1
  done
  [[ -S "${tmp}/admin.sock" ]]

  echo "--- mpc top --json reports windowed stats + the chaos restart ---"
  # Poll until the killed worker's respawn shows up in the counters (the
  # kill fires after 2 queries; at 50 qps that is well under a second).
  local top_ok=0
  for _ in $(seq 1 100); do
    if "${dir}/tools/mpc" top --socket="${tmp}/admin.sock" --json \
        > "${tmp}/top.json" 2>/dev/null \
        && grep -q '"net.supervisor.site_1.restarts"' "${tmp}/top.json" \
        && grep -q '"serve.queries"' "${tmp}/top.json" \
        && grep -q '"window_delta"' "${tmp}/top.json" \
        && grep -q '"serve.queue_depth"' "${tmp}/top.json"; then
      top_ok=1
      break
    fi
    sleep 0.2
  done
  if [[ "${top_ok}" -ne 1 ]]; then
    echo "mpc top --json never showed the restarted site" >&2
    cat "${tmp}/top.json" >&2 || true
    return 1
  fi
  grep -q '"p95"' "${tmp}/top.json"

  echo "--- mpc top text rendering (one frame) ---"
  "${dir}/tools/mpc" top --socket="${tmp}/admin.sock" --count=1 \
    > "${tmp}/top.txt"
  grep -q "queries" "${tmp}/top.txt"
  grep -q "sites" "${tmp}/top.txt"

  echo "--- SIGUSR1 flushes a stats snapshot without terminating ---"
  kill -USR1 "${serve_pid}"
  local flush_ok=0
  for _ in $(seq 1 50); do
    if grep -q '"counters"' "${tmp}/serve.out"; then
      flush_ok=1
      break
    fi
    sleep 0.1
  done
  [[ "${flush_ok}" -eq 1 ]]
  kill -0 "${serve_pid}"  # still running

  echo "--- SIGTERM graceful drain with the admin socket up ---"
  kill -TERM "${serve_pid}"
  local rc=0
  wait "${serve_pid}" || rc=$?
  if [[ "${rc}" -ne 0 ]]; then
    echo "coordinator exited ${rc} on SIGTERM (want 0)" >&2
    cat "${tmp}/serve.out" >&2
    return 1
  fi
  grep -q "^drained:" "${tmp}/serve.out"

  echo "--- slow-query log carries shape keys and attempt timelines ---"
  [[ -s "${tmp}/slow.jsonl" ]]
  grep -q '"shape_key"' "${tmp}/slow.jsonl"
  grep -q '"attempts"' "${tmp}/slow.jsonl"
  grep -q '"site"' "${tmp}/slow.jsonl"

  echo "--- a retained trace passes trace_check merged ---"
  # Executed (non-cache-hit) slow queries retain a merged trace with the
  # site workers' spans; cache hits retain coordinator-only traces. Find
  # one of the former.
  local merged_ok=0 f
  for f in "${tmp}"/slow.jsonl.trace.*.json; do
    [[ -e "${f}" ]] || break
    if grep -q 'site.eval' "${f}"; then
      "${dir}/tools/trace_check" merged "${f}" \
        serve.query exec.rpc.attempt site.eval
      merged_ok=1
      break
    fi
  done
  if [[ "${merged_ok}" -ne 1 ]]; then
    echo "no retained trace with remote site.eval spans found" >&2
    return 1
  fi
  echo "live-introspection smoke passed"
}

run_config build
trace_smoke build
recovery_smoke build
serve_smoke build
adaptive_smoke build
segment_smoke build
chaos_smoke build
obs_smoke build
# The asan run_config re-runs the whole suite — including the RPC frame
# decoder fuzz tests and the multi-process RemoteCluster tests — under
# AddressSanitizer (workers exec the asan-built mpc binary).
run_config build-asan -DMPC_SANITIZE=address
run_config build-ubsan -DMPC_SANITIZE=undefined

# The obs tests specifically under TSan: concurrent span recording and
# counter updates are the code most at risk of a data race. The dynamic
# and migration tests join them: background repartition and hot-vertex
# migration mutate the partitioning the serving snapshots capture.
echo "=== configure+build: build-tsan (-DMPC_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DMPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" \
  --target obs_trace_test obs_metrics_test obs_snapshot_test \
  trace_context_test serve_test dynamic_test migration_test \
  mpc_cli trace_check
echo "=== tracer/metrics/serving tests under tsan ==="
./build-tsan/tests/obs_trace_test
./build-tsan/tests/obs_metrics_test
./build-tsan/tests/obs_snapshot_test
./build-tsan/tests/trace_context_test
./build-tsan/tests/serve_test
./build-tsan/tests/dynamic_test
./build-tsan/tests/migration_test
serve_smoke build-tsan
adaptive_smoke build-tsan
obs_smoke build-tsan

echo "All checks passed (default + asan + ubsan + obs/serve/segment smoke + tsan)."

#!/usr/bin/env bash
# Tier-1 verification: build + full ctest, three times — the default
# build, an AddressSanitizer build, and an UndefinedBehaviorSanitizer
# build — so the logic, the memory behavior and the arithmetic of the
# fault-injection and dynamic-maintenance paths are all exercised. The
# fault determinism test
# (same seed => bit-identical stats at any thread count) runs in both
# configurations; it is the one most likely to catch a nondeterministic
# recovery path.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configure+build: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== fault determinism test: ${dir} ==="
  "${dir}/tests/fault_tolerance_test" \
    --gtest_filter='FaultToleranceTest.SameSeedSameStatsAtAnyThreadCount'
  echo "=== full test suite: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config build
run_config build-asan -DMPC_SANITIZE=address
run_config build-ubsan -DMPC_SANITIZE=undefined

echo "All checks passed (default + asan + ubsan)."

// Property-graph partitioning — the paper's Section VII outlook in
// action. Builds a Neo4j-style social/commerce property graph, maps it to
// RDF with the direct mapping, and runs MPC on it, showing both regimes:
// relationship-rich graphs partition well; a single-label graph leaves
// MPC nothing to internalize.
//
//   ./build/examples/property_graph_partitioning

#include <iostream>

#include "common/random.h"
#include "pg/pg_to_rdf.h"
#include "pg/property_graph.h"

int main() {
  using namespace mpc;

  // A labeled property graph: customers in regional communities,
  // products, orders. Relationship labels: KNOWS (intra-community),
  // PLACED / CONTAINS (local), SHIPPED_WITH (cross-region, rare).
  pg::PropertyGraph graph;
  Rng rng(7);
  const int kRegions = 24, kCustomersPerRegion = 12, kProducts = 72;

  for (int p = 0; p < kProducts; ++p) {
    (void)graph.AddVertex("prod" + std::to_string(p), "Product",
                          {{"sku", "SKU" + std::to_string(p)}});
  }
  std::vector<std::string> last_order_of_region(kRegions);
  for (int r = 0; r < kRegions; ++r) {
    for (int c = 0; c < kCustomersPerRegion; ++c) {
      std::string id = "cust" + std::to_string(r) + "_" + std::to_string(c);
      (void)graph.AddVertex(id, "Customer",
                            {{"region", std::to_string(r)}});
      if (c > 0) {
        (void)graph.AddEdgeById(
            "cust" + std::to_string(r) + "_" + std::to_string(c - 1), id,
            "KNOWS");
      }
      // Each customer placed an order containing region-local products...
      std::string order = "ord" + id;
      (void)graph.AddVertex(order, "Order", {{"total", "99"}});
      (void)graph.AddEdgeById(id, order, "PLACED");
      // ...of products from this region's disjoint catalog slice.
      int base = r * (kProducts / kRegions);
      (void)graph.AddEdgeById(
          order,
          "prod" + std::to_string(base + c % (kProducts / kRegions)),
          "CONTAINS");
      last_order_of_region[r] = order;
    }
  }
  // Rare cross-region consolidation shipments.
  for (int r = 0; r + 1 < kRegions; ++r) {
    (void)graph.AddEdgeById(last_order_of_region[r],
                            last_order_of_region[r + 1], "SHIPPED_WITH",
                            {{"carrier", "ACME"}});
  }

  std::cout << "Property graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges, labels:";
  for (const std::string& label : graph.EdgeLabels()) {
    std::cout << " " << label;
  }
  std::cout << "\n\n";

  core::MpcOptions options;
  options.base.k = 4;
  options.base.epsilon = 0.3;
  Result<pg::PgPartitionResult> result =
      pg::PartitionPropertyGraph(graph, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "MPC over the mapped RDF graph (k=4):\n"
            << "  crossing properties: " << result->num_crossing_properties
            << "\n  crossing edges:      " << result->num_crossing_edges
            << "\n  balance ratio:       " << result->balance_ratio
            << "\n  crossing edge labels:";
  for (const std::string& label : result->crossing_edge_labels) {
    std::cout << " " << label;
  }
  std::cout << "\n  (KNOWS/PLACED/CONTAINS stay internal; only the rare "
               "cross-region SHIPPED_WITH may cross)\n\n";

  // The Section VII caveat: collapse every relationship to one label and
  // MPC has nothing left to internalize.
  pg::PropertyGraph flat;
  for (int i = 0; i < 200; ++i) {
    (void)flat.AddVertex("n" + std::to_string(i), "Node");
  }
  for (int i = 0; i < 600; ++i) {
    (void)flat.AddEdgeById(
        "n" + std::to_string(rng.Below(200)),
        "n" + std::to_string(rng.Below(200)), "RELATED");
  }
  Result<pg::PgPartitionResult> flat_result =
      pg::PartitionPropertyGraph(flat, options);
  if (!flat_result.ok()) {
    std::cerr << flat_result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Single-label graph (the property-graph regime the paper "
               "warns about):\n  crossing edge labels:";
  for (const std::string& label : flat_result->crossing_edge_labels) {
    std::cout << " " << label;
  }
  std::cout << "\n  -> every label crosses; MPC degenerates to plain min "
               "edge-cut, as Section VII predicts.\n";
  return 0;
}

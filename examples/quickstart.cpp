// Quickstart: build the paper's running example (Fig. 2), partition it
// with MPC, and watch a non-star query execute without inter-partition
// joins.
//
//   ./build/examples/quickstart

#include <iostream>

#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "exec/query_classifier.h"
#include "mpc/mpc_partitioner.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"

int main() {
  using namespace mpc;

  // The example RDF graph of Fig. 2: a film/person graph where
  // birthPlace is the only property that must cross partitions.
  const char* kData = R"(<http://ex.org/002> <http://ex.org/birthPlace> <http://ex.org/001> .
<http://ex.org/003> <http://ex.org/birthPlace> <http://ex.org/001> .
<http://ex.org/003> <http://ex.org/spouse> <http://ex.org/002> .
<http://ex.org/003> <http://ex.org/birthPlace> <http://ex.org/010> .
<http://ex.org/010> <http://ex.org/foundingDate> <http://ex.org/011> .
<http://ex.org/004> <http://ex.org/birthPlace> <http://ex.org/010> .
<http://ex.org/005> <http://ex.org/starring> <http://ex.org/004> .
<http://ex.org/005> <http://ex.org/chronology> <http://ex.org/007> .
<http://ex.org/006> <http://ex.org/residence> <http://ex.org/004> .
<http://ex.org/007> <http://ex.org/starring> <http://ex.org/008> .
<http://ex.org/008> <http://ex.org/residence> <http://ex.org/009> .
<http://ex.org/002> <http://ex.org/birthPlace> <http://ex.org/009> .
)";

  rdf::GraphBuilder builder;
  Status st = rdf::NTriplesParser::ParseDocument(kData, &builder);
  if (!st.ok()) {
    std::cerr << "parse failed: " << st.ToString() << "\n";
    return 1;
  }
  rdf::RdfGraph graph = builder.Build();
  std::cout << "Graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " triples, " << graph.num_properties()
            << " properties\n";

  // MPC partitioning into k=2 sites (epsilon=0.6 on this 11-vertex toy).
  core::MpcOptions options;
  options.base.k = 2;
  options.base.epsilon = 0.6;
  options.strategy = core::SelectionStrategy::kGreedy;
  core::MpcPartitioner partitioner(options);
  partition::Partitioning partitioning = partitioner.Partition(graph);

  std::cout << "Crossing properties ("
            << partitioning.num_crossing_properties() << "):";
  for (rdf::PropertyId p : partitioning.CrossingProperties()) {
    std::cout << " " << graph.PropertyName(p);
  }
  std::cout << "\nCrossing edges: " << partitioning.num_crossing_edges()
            << "\n";

  // A non-star query that avoids the crossing property: Q2 of Fig. 1(b).
  const std::string query_text =
      "SELECT ?f ?p ?q WHERE { "
      "?f <http://ex.org/starring> ?p . "
      "?q <http://ex.org/residence> ?p . }";
  Result<sparql::QueryGraph> query = sparql::SparqlParser::Parse(query_text);
  if (!query.ok()) {
    std::cerr << "query parse failed: " << query.status().ToString() << "\n";
    return 1;
  }

  exec::Classification cls =
      exec::ClassifyQuery(*query, partitioning, graph);
  std::cout << "Query class: " << exec::IeqClassName(cls.cls)
            << " (independently executable: "
            << (cls.independently_executable() ? "yes" : "no") << ")\n";

  exec::Cluster cluster = exec::Cluster::Build(std::move(partitioning));
  exec::DistributedExecutor executor(cluster, graph);
  Result<exec::QueryResponse> response =
      executor.Execute(exec::QueryRequest::FromQuery(*query));
  if (!response.ok()) {
    std::cerr << "execution failed: " << response.status().ToString() << "\n";
    return 1;
  }
  const store::BindingTable& result = response->bindings;
  std::cout << "Matches: " << result.num_rows()
            << " | subqueries: " << response->stats.num_subqueries
            << " | join time: " << response->stats.join_millis << " ms\n";
  for (const auto& row : result.rows) {
    std::cout << " ";
    for (size_t i = 0; i < row.size(); ++i) {
      std::cout << " ?" << result.var_ids[i] << "="
                << graph.VertexName(row[i]);
    }
    std::cout << "\n";
  }
  return 0;
}

// Workload analysis: generate a WatDiv-style query log, classify every
// query against each partitioning strategy, and break down *why* queries
// are (or are not) independently executable — internal vs Type-I vs
// Type-II vs non-IEQ, plus subquery counts for the decomposed ones.
//
//   ./build/examples/query_log_analysis [num_queries]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "common/string_util.h"
#include "exec/decomposer.h"
#include "exec/query_classifier.h"
#include "mpc/mpc_partitioner.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "sparql/parser.h"
#include "sparql/shape.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const size_t num_queries = argc > 1 ? std::atoi(argv[1]) : 500;

  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kWatdiv, 0.5);
  std::vector<workload::NamedQuery> log =
      workload::MakeQueryLog(workload::DatasetId::kWatdiv, d.graph,
                             num_queries);
  std::cout << "WatDiv analogue: "
            << FormatWithCommas(d.graph.num_edges()) << " triples; log of "
            << log.size() << " queries\n\n";

  struct Strategy {
    std::string name;
    partition::Partitioning partitioning;
  };
  std::vector<Strategy> strategies;
  {
    core::MpcOptions options;
    options.base.k = 8;
    options.base.epsilon = 0.1;
    strategies.push_back(
        {"MPC", core::MpcPartitioner(options).Partition(d.graph)});
  }
  {
    partition::PartitionerOptions options{.k = 8, .epsilon = 0.1, .seed = 1};
    strategies.push_back(
        {"Subject_Hash",
         partition::SubjectHashPartitioner(options).Partition(d.graph)});
    strategies.push_back(
        {"METIS",
         partition::EdgeCutPartitioner(options).Partition(d.graph)});
  }

  std::cout << std::left << std::setw(14) << "strategy" << std::right
            << std::setw(10) << "internal" << std::setw(9) << "type-I"
            << std::setw(9) << "type-II" << std::setw(9) << "non-IEQ"
            << std::setw(10) << "IEQ %" << std::setw(14) << "avg subq"
            << "\n";

  for (const Strategy& s : strategies) {
    size_t counts[4] = {0, 0, 0, 0};
    size_t total_subqueries = 0;
    size_t non_ieq = 0;
    for (const workload::NamedQuery& nq : log) {
      Result<sparql::QueryGraph> q = sparql::SparqlParser::Parse(nq.sparql);
      if (!q.ok()) {
        std::cerr << "parse failed: " << q.status().ToString() << "\n";
        return 1;
      }
      exec::Classification cls =
          exec::ClassifyQuery(*q, s.partitioning, d.graph);
      ++counts[static_cast<int>(cls.cls)];
      if (!cls.independently_executable()) {
        exec::Decomposition dec =
            exec::DecomposeQuery(*q, cls.crossing_pattern);
        total_subqueries += dec.num_subqueries();
        ++non_ieq;
      }
    }
    double ieq_pct =
        100.0 * (log.size() - counts[3]) / static_cast<double>(log.size());
    std::cout << std::left << std::setw(14) << s.name << std::right
              << std::setw(10) << counts[0] << std::setw(9) << counts[1]
              << std::setw(9) << counts[2] << std::setw(9) << counts[3]
              << std::setw(9) << FormatDouble(ieq_pct, 1) << "%"
              << std::setw(14)
              << (non_ieq == 0
                      ? std::string("-")
                      : FormatDouble(static_cast<double>(total_subqueries) /
                                         non_ieq,
                                     2))
              << "\n";
  }
  std::cout << "\nFewer crossing properties widen the internal/Type-I/"
               "Type-II classes and shrink\nthe average number of "
               "decomposed subqueries (= inter-partition joins) for the "
               "rest.\n";
  return 0;
}

// End-to-end comparison on the LUBM analogue: partition with all four
// strategies (MPC / Subject_Hash / METIS / VP), classify and execute the
// 14 benchmark queries, and print a per-query comparison — a miniature of
// the paper's Tables II-IV and Fig. 7.
//
//   ./build/examples/lubm_end_to_end [num_universities]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common/string_util.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "mpc/mpc_partitioner.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

int main(int argc, char** argv) {
  using namespace mpc;

  workload::LubmOptions lubm_options;
  if (argc > 1) lubm_options.num_universities = std::atoi(argv[1]);
  workload::GeneratedDataset dataset = workload::MakeLubm(lubm_options);
  const rdf::RdfGraph& graph = dataset.graph;
  std::cout << "LUBM: " << FormatWithCommas(graph.num_vertices())
            << " entities, " << FormatWithCommas(graph.num_edges())
            << " triples, " << graph.num_properties() << " properties\n\n";

  const uint32_t k = 8;
  const double epsilon = 0.1;

  struct Strategy {
    std::string name;
    exec::Cluster cluster;
  };
  std::vector<Strategy> strategies;

  {
    core::MpcOptions options;
    options.base.k = k;
    options.base.epsilon = epsilon;
    core::MpcPartitioner mpc(options);
    strategies.push_back({"MPC", exec::Cluster::Build(mpc.Partition(graph))});
  }
  {
    partition::PartitionerOptions options{.k = k, .epsilon = epsilon};
    partition::SubjectHashPartitioner hash(options);
    strategies.push_back(
        {"Subject_Hash", exec::Cluster::Build(hash.Partition(graph))});
  }
  {
    partition::PartitionerOptions options{.k = k, .epsilon = epsilon};
    partition::EdgeCutPartitioner metis(options);
    strategies.push_back(
        {"METIS", exec::Cluster::Build(metis.Partition(graph))});
  }
  {
    partition::PartitionerOptions options{.k = k, .epsilon = epsilon};
    partition::VpPartitioner vp(options);
    strategies.push_back({"VP", exec::Cluster::Build(vp.Partition(graph))});
  }

  std::cout << std::left << std::setw(14) << "strategy" << std::right
            << std::setw(10) << "|Lcross|" << std::setw(12) << "|Ec|"
            << std::setw(10) << "balance" << "\n";
  for (const Strategy& s : strategies) {
    const auto& p = s.cluster.partitioning();
    std::cout << std::left << std::setw(14) << s.name << std::right
              << std::setw(10) << p.num_crossing_properties()
              << std::setw(12) << p.num_crossing_edges() << std::setw(10)
              << FormatDouble(p.BalanceRatio(), 2) << "\n";
  }

  std::cout << "\n"
            << std::left << std::setw(6) << "query" << std::setw(7)
            << "shape";
  for (const Strategy& s : strategies) {
    std::cout << std::right << std::setw(16) << (s.name + " ms");
  }
  std::cout << std::setw(10) << "results" << "\n";

  for (const workload::NamedQuery& nq : dataset.benchmark_queries) {
    Result<sparql::QueryGraph> query =
        sparql::SparqlParser::Parse(nq.sparql);
    if (!query.ok()) {
      std::cerr << nq.name << ": " << query.status().ToString() << "\n";
      return 1;
    }
    std::cout << std::left << std::setw(6) << nq.name << std::setw(7)
              << (nq.is_star ? "star" : "other");
    size_t results = 0;
    for (const Strategy& s : strategies) {
      exec::DistributedExecutor executor(s.cluster, graph);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(*query));
      if (!response.ok()) {
        std::cerr << "\n" << nq.name << " failed on " << s.name << ": "
                  << response.status().ToString() << "\n";
        return 1;
      }
      results = response->bindings.num_rows();
      std::cout << std::right << std::setw(13)
                << FormatDouble(response->stats.total_millis, 1)
                << (response->stats.independent ? "  u" : " *j");
    }
    std::cout << std::setw(10) << results << "\n";
  }
  std::cout << "\n  (u = union-only / independent, *j = needed "
               "inter-partition join)\n";
  return 0;
}

// Partition your own RDF data: reads an N-Triples file, runs MPC, prints
// the crossing-property report, and writes one N-Triples file per
// partition (internal edges + crossing-edge replicas) plus a summary —
// the offline pipeline a deployment would run before loading sites.
//
//   ./build/examples/custom_dataset_partitioning [file.nt] [k] [epsilon]
//
// Without arguments it writes and uses a small built-in sample so the
// example is runnable out of the box.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/string_util.h"
#include "mpc/mpc_partitioner.h"
#include "rdf/ntriples.h"
#include "rdf/stats.h"
#include "workload/lubm.h"

namespace {

std::string WriteSampleFile() {
  // A LUBM-analogue snippet as the built-in sample.
  mpc::workload::LubmOptions options;
  options.num_universities = 4;
  mpc::workload::GeneratedDataset d = mpc::workload::MakeLubm(options);
  std::string path =
      (std::filesystem::temp_directory_path() / "mpc_sample.nt").string();
  mpc::Status st = mpc::rdf::WriteNTriplesFile(d.graph, path);
  if (!st.ok()) {
    std::cerr << "cannot write sample: " << st.ToString() << "\n";
    std::exit(1);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpc;

  const std::string input = argc > 1 ? argv[1] : WriteSampleFile();
  const uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  const double epsilon = argc > 3 ? std::atof(argv[3]) : 0.1;

  rdf::GraphBuilder builder;
  Status st = rdf::NTriplesParser::ParseFile(input, &builder);
  if (!st.ok()) {
    std::cerr << "parse failed: " << st.ToString() << "\n";
    return 1;
  }
  rdf::RdfGraph graph = builder.Build();
  rdf::DatasetStats stats = rdf::ComputeStats(input, graph);
  std::cout << "Loaded " << FormatWithCommas(stats.num_triples)
            << " triples, " << FormatWithCommas(stats.num_entities)
            << " entities, " << stats.num_properties << " properties from "
            << input << "\n";

  core::MpcOptions options;
  options.base.k = k;
  options.base.epsilon = epsilon;
  core::MpcPartitioner partitioner(options);
  core::MpcRunStats run_stats;
  partition::Partitioning partitioning =
      partitioner.Partition(graph, &run_stats);

  std::cout << "MPC: |L_in| = " << run_stats.selection.num_internal << "/"
            << graph.num_properties()
            << ", supervertices = " << run_stats.num_supervertices
            << ", |L_cross| = " << partitioning.num_crossing_properties()
            << ", |E^c| = "
            << FormatWithCommas(partitioning.num_crossing_edges())
            << ", balance = "
            << FormatDouble(partitioning.BalanceRatio(), 3) << "\n";
  std::cout << "Crossing properties:";
  for (rdf::PropertyId p : partitioning.CrossingProperties()) {
    std::cout << " " << graph.PropertyName(p);
  }
  std::cout << "\n";

  // Write each partition as its own N-Triples file.
  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "mpc_partitions").string();
  std::filesystem::create_directories(out_dir);
  for (uint32_t i = 0; i < partitioning.k(); ++i) {
    const partition::Partition& part = partitioning.partition(i);
    std::string path = out_dir + "/partition_" + std::to_string(i) + ".nt";
    std::ofstream out(path, std::ios::binary);
    auto write_triple = [&](const rdf::Triple& t) {
      out << graph.VertexName(t.subject) << ' '
          << graph.PropertyName(t.property) << ' '
          << graph.VertexName(t.object) << " .\n";
    };
    for (const rdf::Triple& t : part.internal_edges) write_triple(t);
    for (const rdf::Triple& t : part.crossing_edges) write_triple(t);
    std::cout << "  partition " << i << ": "
              << FormatWithCommas(part.num_owned_vertices) << " vertices, "
              << FormatWithCommas(part.internal_edges.size())
              << " internal + "
              << FormatWithCommas(part.crossing_edges.size())
              << " crossing-replica triples -> " << path << "\n";
  }
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/ablation_label_density.dir/ablation_label_density.cpp.o"
  "CMakeFiles/ablation_label_density.dir/ablation_label_density.cpp.o.d"
  "ablation_label_density"
  "ablation_label_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_label_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_label_density.
# This may be replaced when dependencies are built.

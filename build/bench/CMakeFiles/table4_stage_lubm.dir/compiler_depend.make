# Empty compiler generated dependencies file for table4_stage_lubm.
# This may be replaced when dependencies are built.

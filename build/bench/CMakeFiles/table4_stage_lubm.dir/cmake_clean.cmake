file(REMOVE_RECURSE
  "CMakeFiles/table4_stage_lubm.dir/table4_stage_lubm.cpp.o"
  "CMakeFiles/table4_stage_lubm.dir/table4_stage_lubm.cpp.o.d"
  "table4_stage_lubm"
  "table4_stage_lubm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_stage_lubm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

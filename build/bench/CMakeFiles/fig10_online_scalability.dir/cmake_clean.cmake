file(REMOVE_RECURSE
  "CMakeFiles/fig10_online_scalability.dir/fig10_online_scalability.cpp.o"
  "CMakeFiles/fig10_online_scalability.dir/fig10_online_scalability.cpp.o.d"
  "fig10_online_scalability"
  "fig10_online_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_online_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table5_stage_yago_bio2rdf.
# This may be replaced when dependencies are built.

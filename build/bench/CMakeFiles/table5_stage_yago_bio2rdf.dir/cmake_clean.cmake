file(REMOVE_RECURSE
  "CMakeFiles/table5_stage_yago_bio2rdf.dir/table5_stage_yago_bio2rdf.cpp.o"
  "CMakeFiles/table5_stage_yago_bio2rdf.dir/table5_stage_yago_bio2rdf.cpp.o.d"
  "table5_stage_yago_bio2rdf"
  "table5_stage_yago_bio2rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_stage_yago_bio2rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

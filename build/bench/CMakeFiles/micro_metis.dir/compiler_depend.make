# Empty compiler generated dependencies file for micro_metis.
# This may be replaced when dependencies are built.

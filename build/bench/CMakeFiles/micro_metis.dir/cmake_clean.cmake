file(REMOVE_RECURSE
  "CMakeFiles/micro_metis.dir/micro_metis.cpp.o"
  "CMakeFiles/micro_metis.dir/micro_metis.cpp.o.d"
  "micro_metis"
  "micro_metis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_metis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

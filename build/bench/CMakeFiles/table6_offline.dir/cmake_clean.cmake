file(REMOVE_RECURSE
  "CMakeFiles/table6_offline.dir/table6_offline.cpp.o"
  "CMakeFiles/table6_offline.dir/table6_offline.cpp.o.d"
  "table6_offline"
  "table6_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table6_offline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_partition_quality.dir/table2_partition_quality.cpp.o"
  "CMakeFiles/table2_partition_quality.dir/table2_partition_quality.cpp.o.d"
  "table2_partition_quality"
  "table2_partition_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_partition_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig8_query_logs.
# This may be replaced when dependencies are built.

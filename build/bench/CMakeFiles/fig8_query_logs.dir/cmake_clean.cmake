file(REMOVE_RECURSE
  "CMakeFiles/fig8_query_logs.dir/fig8_query_logs.cpp.o"
  "CMakeFiles/fig8_query_logs.dir/fig8_query_logs.cpp.o.d"
  "fig8_query_logs"
  "fig8_query_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_query_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table3_ieq_percentage.dir/table3_ieq_percentage.cpp.o"
  "CMakeFiles/table3_ieq_percentage.dir/table3_ieq_percentage.cpp.o.d"
  "table3_ieq_percentage"
  "table3_ieq_percentage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ieq_percentage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table3_ieq_percentage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_benchmark_queries.dir/fig7_benchmark_queries.cpp.o"
  "CMakeFiles/fig7_benchmark_queries.dir/fig7_benchmark_queries.cpp.o.d"
  "fig7_benchmark_queries"
  "fig7_benchmark_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_benchmark_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

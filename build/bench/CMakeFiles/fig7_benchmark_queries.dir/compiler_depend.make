# Empty compiler generated dependencies file for fig7_benchmark_queries.
# This may be replaced when dependencies are built.

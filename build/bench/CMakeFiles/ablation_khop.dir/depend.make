# Empty dependencies file for ablation_khop.
# This may be replaced when dependencies are built.

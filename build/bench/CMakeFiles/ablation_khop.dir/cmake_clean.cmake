file(REMOVE_RECURSE
  "CMakeFiles/ablation_khop.dir/ablation_khop.cpp.o"
  "CMakeFiles/ablation_khop.dir/ablation_khop.cpp.o.d"
  "ablation_khop"
  "ablation_khop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_khop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

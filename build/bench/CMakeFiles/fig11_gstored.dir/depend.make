# Empty dependencies file for fig11_gstored.
# This may be replaced when dependencies are built.

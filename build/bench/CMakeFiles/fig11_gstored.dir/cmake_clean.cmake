file(REMOVE_RECURSE
  "CMakeFiles/fig11_gstored.dir/fig11_gstored.cpp.o"
  "CMakeFiles/fig11_gstored.dir/fig11_gstored.cpp.o.d"
  "fig11_gstored"
  "fig11_gstored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gstored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table7_exact_vs_greedy.dir/table7_exact_vs_greedy.cpp.o"
  "CMakeFiles/table7_exact_vs_greedy.dir/table7_exact_vs_greedy.cpp.o.d"
  "table7_exact_vs_greedy"
  "table7_exact_vs_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_exact_vs_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

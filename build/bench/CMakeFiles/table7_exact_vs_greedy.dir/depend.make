# Empty dependencies file for table7_exact_vs_greedy.
# This may be replaced when dependencies are built.

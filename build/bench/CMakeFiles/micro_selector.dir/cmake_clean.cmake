file(REMOVE_RECURSE
  "CMakeFiles/micro_selector.dir/micro_selector.cpp.o"
  "CMakeFiles/micro_selector.dir/micro_selector.cpp.o.d"
  "micro_selector"
  "micro_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

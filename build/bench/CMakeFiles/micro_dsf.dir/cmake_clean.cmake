file(REMOVE_RECURSE
  "CMakeFiles/micro_dsf.dir/micro_dsf.cpp.o"
  "CMakeFiles/micro_dsf.dir/micro_dsf.cpp.o.d"
  "micro_dsf"
  "micro_dsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

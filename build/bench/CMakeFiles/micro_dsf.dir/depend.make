# Empty dependencies file for micro_dsf.
# This may be replaced when dependencies are built.

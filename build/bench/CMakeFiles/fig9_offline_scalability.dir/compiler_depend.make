# Empty compiler generated dependencies file for fig9_offline_scalability.
# This may be replaced when dependencies are built.

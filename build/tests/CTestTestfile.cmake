# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dictionary_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ntriples_test[1]_include.cmake")
include("/root/repo/build/tests/dsf_test[1]_include.cmake")
include("/root/repo/build/tests/metis_test[1]_include.cmake")
include("/root/repo/build/tests/partitioning_test[1]_include.cmake")
include("/root/repo/build/tests/selector_test[1]_include.cmake")
include("/root/repo/build/tests/coarsener_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/decomposer_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/partition_io_test[1]_include.cmake")
include("/root/repo/build/tests/site_pruning_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_selector_test[1]_include.cmake")
include("/root/repo/build/tests/replication_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/pg_test[1]_include.cmake")
include("/root/repo/build/tests/network_model_test[1]_include.cmake")
include("/root/repo/build/tests/table2_pinning_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/metis_test.dir/metis_test.cc.o"
  "CMakeFiles/metis_test.dir/metis_test.cc.o.d"
  "metis_test"
  "metis_test.pdb"
  "metis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/mpc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/mpc_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/mpc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/mpc_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mpc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/metis/CMakeFiles/mpc_metis.dir/DependInfo.cmake"
  "/root/repo/build/src/dsf/CMakeFiles/mpc_dsf.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/site_pruning_test.dir/site_pruning_test.cc.o"
  "CMakeFiles/site_pruning_test.dir/site_pruning_test.cc.o.d"
  "site_pruning_test"
  "site_pruning_test.pdb"
  "site_pruning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

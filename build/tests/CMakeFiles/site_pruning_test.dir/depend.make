# Empty dependencies file for site_pruning_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mpc_partitioner_test.dir/mpc_partitioner_test.cc.o"
  "CMakeFiles/mpc_partitioner_test.dir/mpc_partitioner_test.cc.o.d"
  "mpc_partitioner_test"
  "mpc_partitioner_test.pdb"
  "mpc_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mpc_partitioner_test.
# This may be replaced when dependencies are built.

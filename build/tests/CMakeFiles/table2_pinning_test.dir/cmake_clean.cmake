file(REMOVE_RECURSE
  "CMakeFiles/table2_pinning_test.dir/table2_pinning_test.cc.o"
  "CMakeFiles/table2_pinning_test.dir/table2_pinning_test.cc.o.d"
  "table2_pinning_test"
  "table2_pinning_test.pdb"
  "table2_pinning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pinning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_pinning_test.
# This may be replaced when dependencies are built.

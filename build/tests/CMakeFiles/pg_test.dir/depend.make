# Empty dependencies file for pg_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/replication_analysis_test.dir/replication_analysis_test.cc.o"
  "CMakeFiles/replication_analysis_test.dir/replication_analysis_test.cc.o.d"
  "replication_analysis_test"
  "replication_analysis_test.pdb"
  "replication_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

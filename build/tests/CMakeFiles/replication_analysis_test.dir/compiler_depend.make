# Empty compiler generated dependencies file for replication_analysis_test.
# This may be replaced when dependencies are built.

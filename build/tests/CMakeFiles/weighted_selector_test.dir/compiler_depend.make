# Empty compiler generated dependencies file for weighted_selector_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/weighted_selector_test.dir/weighted_selector_test.cc.o"
  "CMakeFiles/weighted_selector_test.dir/weighted_selector_test.cc.o.d"
  "weighted_selector_test"
  "weighted_selector_test.pdb"
  "weighted_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dsf_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dsf_test.dir/dsf_test.cc.o"
  "CMakeFiles/dsf_test.dir/dsf_test.cc.o.d"
  "dsf_test"
  "dsf_test.pdb"
  "dsf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

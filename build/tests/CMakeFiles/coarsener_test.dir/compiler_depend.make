# Empty compiler generated dependencies file for coarsener_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coarsener_test.dir/coarsener_test.cc.o"
  "CMakeFiles/coarsener_test.dir/coarsener_test.cc.o.d"
  "coarsener_test"
  "coarsener_test.pdb"
  "coarsener_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsener_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mpc_rdf.dir/dictionary.cc.o"
  "CMakeFiles/mpc_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/mpc_rdf.dir/graph.cc.o"
  "CMakeFiles/mpc_rdf.dir/graph.cc.o.d"
  "CMakeFiles/mpc_rdf.dir/ntriples.cc.o"
  "CMakeFiles/mpc_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/mpc_rdf.dir/stats.cc.o"
  "CMakeFiles/mpc_rdf.dir/stats.cc.o.d"
  "libmpc_rdf.a"
  "libmpc_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

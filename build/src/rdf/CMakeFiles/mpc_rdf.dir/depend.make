# Empty dependencies file for mpc_rdf.
# This may be replaced when dependencies are built.

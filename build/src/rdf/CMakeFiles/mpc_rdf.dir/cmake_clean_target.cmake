file(REMOVE_RECURSE
  "libmpc_rdf.a"
)

# Empty dependencies file for mpc_pg.
# This may be replaced when dependencies are built.

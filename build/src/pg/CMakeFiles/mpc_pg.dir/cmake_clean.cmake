file(REMOVE_RECURSE
  "CMakeFiles/mpc_pg.dir/pg_to_rdf.cc.o"
  "CMakeFiles/mpc_pg.dir/pg_to_rdf.cc.o.d"
  "CMakeFiles/mpc_pg.dir/property_graph.cc.o"
  "CMakeFiles/mpc_pg.dir/property_graph.cc.o.d"
  "libmpc_pg.a"
  "libmpc_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

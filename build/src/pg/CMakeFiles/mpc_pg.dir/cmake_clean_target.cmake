file(REMOVE_RECURSE
  "libmpc_pg.a"
)

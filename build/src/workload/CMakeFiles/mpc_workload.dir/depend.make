# Empty dependencies file for mpc_workload.
# This may be replaced when dependencies are built.

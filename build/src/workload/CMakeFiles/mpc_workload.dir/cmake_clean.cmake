file(REMOVE_RECURSE
  "CMakeFiles/mpc_workload.dir/bio2rdf.cc.o"
  "CMakeFiles/mpc_workload.dir/bio2rdf.cc.o.d"
  "CMakeFiles/mpc_workload.dir/datasets.cc.o"
  "CMakeFiles/mpc_workload.dir/datasets.cc.o.d"
  "CMakeFiles/mpc_workload.dir/dbpedia.cc.o"
  "CMakeFiles/mpc_workload.dir/dbpedia.cc.o.d"
  "CMakeFiles/mpc_workload.dir/generator_util.cc.o"
  "CMakeFiles/mpc_workload.dir/generator_util.cc.o.d"
  "CMakeFiles/mpc_workload.dir/lgd.cc.o"
  "CMakeFiles/mpc_workload.dir/lgd.cc.o.d"
  "CMakeFiles/mpc_workload.dir/lubm.cc.o"
  "CMakeFiles/mpc_workload.dir/lubm.cc.o.d"
  "CMakeFiles/mpc_workload.dir/query_log.cc.o"
  "CMakeFiles/mpc_workload.dir/query_log.cc.o.d"
  "CMakeFiles/mpc_workload.dir/watdiv.cc.o"
  "CMakeFiles/mpc_workload.dir/watdiv.cc.o.d"
  "CMakeFiles/mpc_workload.dir/yago2.cc.o"
  "CMakeFiles/mpc_workload.dir/yago2.cc.o.d"
  "libmpc_workload.a"
  "libmpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

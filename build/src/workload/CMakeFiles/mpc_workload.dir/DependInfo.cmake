
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bio2rdf.cc" "src/workload/CMakeFiles/mpc_workload.dir/bio2rdf.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/bio2rdf.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/workload/CMakeFiles/mpc_workload.dir/datasets.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/datasets.cc.o.d"
  "/root/repo/src/workload/dbpedia.cc" "src/workload/CMakeFiles/mpc_workload.dir/dbpedia.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/dbpedia.cc.o.d"
  "/root/repo/src/workload/generator_util.cc" "src/workload/CMakeFiles/mpc_workload.dir/generator_util.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/generator_util.cc.o.d"
  "/root/repo/src/workload/lgd.cc" "src/workload/CMakeFiles/mpc_workload.dir/lgd.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/lgd.cc.o.d"
  "/root/repo/src/workload/lubm.cc" "src/workload/CMakeFiles/mpc_workload.dir/lubm.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/lubm.cc.o.d"
  "/root/repo/src/workload/query_log.cc" "src/workload/CMakeFiles/mpc_workload.dir/query_log.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/query_log.cc.o.d"
  "/root/repo/src/workload/watdiv.cc" "src/workload/CMakeFiles/mpc_workload.dir/watdiv.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/watdiv.cc.o.d"
  "/root/repo/src/workload/yago2.cc" "src/workload/CMakeFiles/mpc_workload.dir/yago2.cc.o" "gcc" "src/workload/CMakeFiles/mpc_workload.dir/yago2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/mpc_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmpc_workload.a"
)

file(REMOVE_RECURSE
  "libmpc_metis.a"
)

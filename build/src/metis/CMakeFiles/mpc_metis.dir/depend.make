# Empty dependencies file for mpc_metis.
# This may be replaced when dependencies are built.

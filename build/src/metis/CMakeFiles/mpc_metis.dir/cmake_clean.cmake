file(REMOVE_RECURSE
  "CMakeFiles/mpc_metis.dir/coarsen.cc.o"
  "CMakeFiles/mpc_metis.dir/coarsen.cc.o.d"
  "CMakeFiles/mpc_metis.dir/csr_graph.cc.o"
  "CMakeFiles/mpc_metis.dir/csr_graph.cc.o.d"
  "CMakeFiles/mpc_metis.dir/initial_partition.cc.o"
  "CMakeFiles/mpc_metis.dir/initial_partition.cc.o.d"
  "CMakeFiles/mpc_metis.dir/partitioner.cc.o"
  "CMakeFiles/mpc_metis.dir/partitioner.cc.o.d"
  "CMakeFiles/mpc_metis.dir/refine.cc.o"
  "CMakeFiles/mpc_metis.dir/refine.cc.o.d"
  "libmpc_metis.a"
  "libmpc_metis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_metis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

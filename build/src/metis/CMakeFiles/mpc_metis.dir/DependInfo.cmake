
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metis/coarsen.cc" "src/metis/CMakeFiles/mpc_metis.dir/coarsen.cc.o" "gcc" "src/metis/CMakeFiles/mpc_metis.dir/coarsen.cc.o.d"
  "/root/repo/src/metis/csr_graph.cc" "src/metis/CMakeFiles/mpc_metis.dir/csr_graph.cc.o" "gcc" "src/metis/CMakeFiles/mpc_metis.dir/csr_graph.cc.o.d"
  "/root/repo/src/metis/initial_partition.cc" "src/metis/CMakeFiles/mpc_metis.dir/initial_partition.cc.o" "gcc" "src/metis/CMakeFiles/mpc_metis.dir/initial_partition.cc.o.d"
  "/root/repo/src/metis/partitioner.cc" "src/metis/CMakeFiles/mpc_metis.dir/partitioner.cc.o" "gcc" "src/metis/CMakeFiles/mpc_metis.dir/partitioner.cc.o.d"
  "/root/repo/src/metis/refine.cc" "src/metis/CMakeFiles/mpc_metis.dir/refine.cc.o" "gcc" "src/metis/CMakeFiles/mpc_metis.dir/refine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

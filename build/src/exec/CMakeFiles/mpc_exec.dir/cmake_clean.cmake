file(REMOVE_RECURSE
  "CMakeFiles/mpc_exec.dir/bloom_filter.cc.o"
  "CMakeFiles/mpc_exec.dir/bloom_filter.cc.o.d"
  "CMakeFiles/mpc_exec.dir/cluster.cc.o"
  "CMakeFiles/mpc_exec.dir/cluster.cc.o.d"
  "CMakeFiles/mpc_exec.dir/decomposer.cc.o"
  "CMakeFiles/mpc_exec.dir/decomposer.cc.o.d"
  "CMakeFiles/mpc_exec.dir/distributed_executor.cc.o"
  "CMakeFiles/mpc_exec.dir/distributed_executor.cc.o.d"
  "CMakeFiles/mpc_exec.dir/explain.cc.o"
  "CMakeFiles/mpc_exec.dir/explain.cc.o.d"
  "CMakeFiles/mpc_exec.dir/gstored_executor.cc.o"
  "CMakeFiles/mpc_exec.dir/gstored_executor.cc.o.d"
  "CMakeFiles/mpc_exec.dir/join.cc.o"
  "CMakeFiles/mpc_exec.dir/join.cc.o.d"
  "CMakeFiles/mpc_exec.dir/query_classifier.cc.o"
  "CMakeFiles/mpc_exec.dir/query_classifier.cc.o.d"
  "libmpc_exec.a"
  "libmpc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/bloom_filter.cc" "src/exec/CMakeFiles/mpc_exec.dir/bloom_filter.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/bloom_filter.cc.o.d"
  "/root/repo/src/exec/cluster.cc" "src/exec/CMakeFiles/mpc_exec.dir/cluster.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/cluster.cc.o.d"
  "/root/repo/src/exec/decomposer.cc" "src/exec/CMakeFiles/mpc_exec.dir/decomposer.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/decomposer.cc.o.d"
  "/root/repo/src/exec/distributed_executor.cc" "src/exec/CMakeFiles/mpc_exec.dir/distributed_executor.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/distributed_executor.cc.o.d"
  "/root/repo/src/exec/explain.cc" "src/exec/CMakeFiles/mpc_exec.dir/explain.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/explain.cc.o.d"
  "/root/repo/src/exec/gstored_executor.cc" "src/exec/CMakeFiles/mpc_exec.dir/gstored_executor.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/gstored_executor.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/mpc_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/query_classifier.cc" "src/exec/CMakeFiles/mpc_exec.dir/query_classifier.cc.o" "gcc" "src/exec/CMakeFiles/mpc_exec.dir/query_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/mpc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mpc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/mpc_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/metis/CMakeFiles/mpc_metis.dir/DependInfo.cmake"
  "/root/repo/build/src/dsf/CMakeFiles/mpc_dsf.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mpc_exec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmpc_exec.a"
)

# Empty compiler generated dependencies file for mpc_dsf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mpc_dsf.dir/disjoint_set_forest.cc.o"
  "CMakeFiles/mpc_dsf.dir/disjoint_set_forest.cc.o.d"
  "libmpc_dsf.a"
  "libmpc_dsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_dsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

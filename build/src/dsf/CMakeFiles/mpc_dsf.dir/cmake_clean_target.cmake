file(REMOVE_RECURSE
  "libmpc_dsf.a"
)

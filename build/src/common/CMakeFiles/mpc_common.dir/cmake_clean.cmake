file(REMOVE_RECURSE
  "CMakeFiles/mpc_common.dir/logging.cc.o"
  "CMakeFiles/mpc_common.dir/logging.cc.o.d"
  "CMakeFiles/mpc_common.dir/status.cc.o"
  "CMakeFiles/mpc_common.dir/status.cc.o.d"
  "CMakeFiles/mpc_common.dir/string_util.cc.o"
  "CMakeFiles/mpc_common.dir/string_util.cc.o.d"
  "CMakeFiles/mpc_common.dir/thread_pool.cc.o"
  "CMakeFiles/mpc_common.dir/thread_pool.cc.o.d"
  "libmpc_common.a"
  "libmpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

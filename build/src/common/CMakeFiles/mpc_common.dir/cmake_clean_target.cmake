file(REMOVE_RECURSE
  "libmpc_common.a"
)

# Empty compiler generated dependencies file for mpc_common.
# This may be replaced when dependencies are built.

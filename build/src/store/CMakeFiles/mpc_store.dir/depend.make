# Empty dependencies file for mpc_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmpc_store.a"
)

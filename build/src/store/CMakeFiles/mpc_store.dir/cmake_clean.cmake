file(REMOVE_RECURSE
  "CMakeFiles/mpc_store.dir/bgp_matcher.cc.o"
  "CMakeFiles/mpc_store.dir/bgp_matcher.cc.o.d"
  "CMakeFiles/mpc_store.dir/triple_store.cc.o"
  "CMakeFiles/mpc_store.dir/triple_store.cc.o.d"
  "libmpc_store.a"
  "libmpc_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

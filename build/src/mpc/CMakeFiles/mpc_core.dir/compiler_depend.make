# Empty compiler generated dependencies file for mpc_core.
# This may be replaced when dependencies are built.

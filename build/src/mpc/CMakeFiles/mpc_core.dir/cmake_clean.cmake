file(REMOVE_RECURSE
  "CMakeFiles/mpc_core.dir/coarsener.cc.o"
  "CMakeFiles/mpc_core.dir/coarsener.cc.o.d"
  "CMakeFiles/mpc_core.dir/mpc_partitioner.cc.o"
  "CMakeFiles/mpc_core.dir/mpc_partitioner.cc.o.d"
  "CMakeFiles/mpc_core.dir/selector.cc.o"
  "CMakeFiles/mpc_core.dir/selector.cc.o.d"
  "CMakeFiles/mpc_core.dir/weighted_selector.cc.o"
  "CMakeFiles/mpc_core.dir/weighted_selector.cc.o.d"
  "libmpc_core.a"
  "libmpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

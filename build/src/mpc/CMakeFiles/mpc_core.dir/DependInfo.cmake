
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/coarsener.cc" "src/mpc/CMakeFiles/mpc_core.dir/coarsener.cc.o" "gcc" "src/mpc/CMakeFiles/mpc_core.dir/coarsener.cc.o.d"
  "/root/repo/src/mpc/mpc_partitioner.cc" "src/mpc/CMakeFiles/mpc_core.dir/mpc_partitioner.cc.o" "gcc" "src/mpc/CMakeFiles/mpc_core.dir/mpc_partitioner.cc.o.d"
  "/root/repo/src/mpc/selector.cc" "src/mpc/CMakeFiles/mpc_core.dir/selector.cc.o" "gcc" "src/mpc/CMakeFiles/mpc_core.dir/selector.cc.o.d"
  "/root/repo/src/mpc/weighted_selector.cc" "src/mpc/CMakeFiles/mpc_core.dir/weighted_selector.cc.o" "gcc" "src/mpc/CMakeFiles/mpc_core.dir/weighted_selector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/dsf/CMakeFiles/mpc_dsf.dir/DependInfo.cmake"
  "/root/repo/build/src/metis/CMakeFiles/mpc_metis.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mpc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

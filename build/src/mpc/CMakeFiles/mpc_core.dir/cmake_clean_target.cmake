file(REMOVE_RECURSE
  "libmpc_core.a"
)

# Empty dependencies file for mpc_partition.
# This may be replaced when dependencies are built.

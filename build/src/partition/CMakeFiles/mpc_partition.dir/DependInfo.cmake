
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/edge_cut_partitioner.cc" "src/partition/CMakeFiles/mpc_partition.dir/edge_cut_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/mpc_partition.dir/edge_cut_partitioner.cc.o.d"
  "/root/repo/src/partition/partition_io.cc" "src/partition/CMakeFiles/mpc_partition.dir/partition_io.cc.o" "gcc" "src/partition/CMakeFiles/mpc_partition.dir/partition_io.cc.o.d"
  "/root/repo/src/partition/partitioning.cc" "src/partition/CMakeFiles/mpc_partition.dir/partitioning.cc.o" "gcc" "src/partition/CMakeFiles/mpc_partition.dir/partitioning.cc.o.d"
  "/root/repo/src/partition/replication_analysis.cc" "src/partition/CMakeFiles/mpc_partition.dir/replication_analysis.cc.o" "gcc" "src/partition/CMakeFiles/mpc_partition.dir/replication_analysis.cc.o.d"
  "/root/repo/src/partition/subject_hash_partitioner.cc" "src/partition/CMakeFiles/mpc_partition.dir/subject_hash_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/mpc_partition.dir/subject_hash_partitioner.cc.o.d"
  "/root/repo/src/partition/vp_partitioner.cc" "src/partition/CMakeFiles/mpc_partition.dir/vp_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/mpc_partition.dir/vp_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/metis/CMakeFiles/mpc_metis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mpc_partition.dir/edge_cut_partitioner.cc.o"
  "CMakeFiles/mpc_partition.dir/edge_cut_partitioner.cc.o.d"
  "CMakeFiles/mpc_partition.dir/partition_io.cc.o"
  "CMakeFiles/mpc_partition.dir/partition_io.cc.o.d"
  "CMakeFiles/mpc_partition.dir/partitioning.cc.o"
  "CMakeFiles/mpc_partition.dir/partitioning.cc.o.d"
  "CMakeFiles/mpc_partition.dir/replication_analysis.cc.o"
  "CMakeFiles/mpc_partition.dir/replication_analysis.cc.o.d"
  "CMakeFiles/mpc_partition.dir/subject_hash_partitioner.cc.o"
  "CMakeFiles/mpc_partition.dir/subject_hash_partitioner.cc.o.d"
  "CMakeFiles/mpc_partition.dir/vp_partitioner.cc.o"
  "CMakeFiles/mpc_partition.dir/vp_partitioner.cc.o.d"
  "libmpc_partition.a"
  "libmpc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

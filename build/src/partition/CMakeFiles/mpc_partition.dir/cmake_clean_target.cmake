file(REMOVE_RECURSE
  "libmpc_partition.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/parser.cc" "src/sparql/CMakeFiles/mpc_sparql.dir/parser.cc.o" "gcc" "src/sparql/CMakeFiles/mpc_sparql.dir/parser.cc.o.d"
  "/root/repo/src/sparql/query_graph.cc" "src/sparql/CMakeFiles/mpc_sparql.dir/query_graph.cc.o" "gcc" "src/sparql/CMakeFiles/mpc_sparql.dir/query_graph.cc.o.d"
  "/root/repo/src/sparql/shape.cc" "src/sparql/CMakeFiles/mpc_sparql.dir/shape.cc.o" "gcc" "src/sparql/CMakeFiles/mpc_sparql.dir/shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mpc_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

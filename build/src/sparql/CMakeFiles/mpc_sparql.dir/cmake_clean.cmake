file(REMOVE_RECURSE
  "CMakeFiles/mpc_sparql.dir/parser.cc.o"
  "CMakeFiles/mpc_sparql.dir/parser.cc.o.d"
  "CMakeFiles/mpc_sparql.dir/query_graph.cc.o"
  "CMakeFiles/mpc_sparql.dir/query_graph.cc.o.d"
  "CMakeFiles/mpc_sparql.dir/shape.cc.o"
  "CMakeFiles/mpc_sparql.dir/shape.cc.o.d"
  "libmpc_sparql.a"
  "libmpc_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmpc_sparql.a"
)

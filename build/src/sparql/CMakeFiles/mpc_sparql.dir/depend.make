# Empty dependencies file for mpc_sparql.
# This may be replaced when dependencies are built.

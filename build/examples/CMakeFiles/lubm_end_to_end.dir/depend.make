# Empty dependencies file for lubm_end_to_end.
# This may be replaced when dependencies are built.

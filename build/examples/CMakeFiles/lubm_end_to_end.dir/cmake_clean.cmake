file(REMOVE_RECURSE
  "CMakeFiles/lubm_end_to_end.dir/lubm_end_to_end.cpp.o"
  "CMakeFiles/lubm_end_to_end.dir/lubm_end_to_end.cpp.o.d"
  "lubm_end_to_end"
  "lubm_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lubm_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

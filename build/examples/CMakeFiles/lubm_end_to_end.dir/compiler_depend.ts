# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lubm_end_to_end.

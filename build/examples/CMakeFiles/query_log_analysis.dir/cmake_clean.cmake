file(REMOVE_RECURSE
  "CMakeFiles/query_log_analysis.dir/query_log_analysis.cpp.o"
  "CMakeFiles/query_log_analysis.dir/query_log_analysis.cpp.o.d"
  "query_log_analysis"
  "query_log_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

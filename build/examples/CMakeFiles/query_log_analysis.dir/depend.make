# Empty dependencies file for query_log_analysis.
# This may be replaced when dependencies are built.

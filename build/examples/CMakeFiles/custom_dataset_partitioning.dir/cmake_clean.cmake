file(REMOVE_RECURSE
  "CMakeFiles/custom_dataset_partitioning.dir/custom_dataset_partitioning.cpp.o"
  "CMakeFiles/custom_dataset_partitioning.dir/custom_dataset_partitioning.cpp.o.d"
  "custom_dataset_partitioning"
  "custom_dataset_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dataset_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

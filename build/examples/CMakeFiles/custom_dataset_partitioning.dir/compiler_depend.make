# Empty compiler generated dependencies file for custom_dataset_partitioning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/property_graph_partitioning.dir/property_graph_partitioning.cpp.o"
  "CMakeFiles/property_graph_partitioning.dir/property_graph_partitioning.cpp.o.d"
  "property_graph_partitioning"
  "property_graph_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_graph_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for property_graph_partitioning.
# This may be replaced when dependencies are built.

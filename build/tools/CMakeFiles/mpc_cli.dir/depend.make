# Empty dependencies file for mpc_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mpc_cli.dir/mpc_cli.cpp.o"
  "CMakeFiles/mpc_cli.dir/mpc_cli.cpp.o.d"
  "mpc"
  "mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

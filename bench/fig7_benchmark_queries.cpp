// Fig. 7: online performance comparison of the four partitionings on the
// LUBM / YAGO2 / Bio2RDF benchmark queries, reported per query and
// grouped into star vs non-star, as in the paper's bar charts.

#include "bench_util.h"

namespace {

void RunDataset(mpc::workload::DatasetId id, double scale) {
  using namespace mpc;
  workload::GeneratedDataset d = workload::MakeDataset(id, scale);

  std::vector<std::string> strategies = bench::StrategyNames();
  std::vector<exec::Cluster> clusters;
  for (const std::string& s : strategies) {
    clusters.push_back(
        exec::Cluster::Build(bench::RunStrategy(s, d.graph, nullptr)));
  }

  std::cout << "--- " << d.name << " (ms per query; * = needed "
            << "inter-partition join) ---\n";
  bench::LeftCell("Query", 7);
  bench::LeftCell("Shape", 7);
  for (const std::string& s : strategies) bench::Cell(s, 15);
  std::cout << "\n";

  for (const workload::NamedQuery& nq : d.benchmark_queries) {
    sparql::QueryGraph q = bench::MustParse(nq.sparql);
    bench::LeftCell(nq.name, 7);
    bench::LeftCell(nq.is_star ? "star" : "other", 7);
    for (size_t i = 0; i < clusters.size(); ++i) {
      exec::DistributedExecutor executor(clusters[i], d.graph);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) {
        std::cerr << nq.name << " failed: " << response.status().ToString()
                  << "\n";
        std::exit(1);
      }
      bench::Cell(FormatDouble(response->stats.total_millis, 1) +
                      (response->stats.independent ? " " : "*"),
                  15);
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = mpc::bench::ScaleFromArgs(argc, argv);
  mpc::bench::ObsScope obs(argc, argv);
  std::cout << "=== Fig. 7: Online Performance on Benchmark Queries "
               "(k=8, scale "
            << scale << ") ===\n";
  RunDataset(mpc::workload::DatasetId::kLubm, scale);
  RunDataset(mpc::workload::DatasetId::kYago2, scale);
  RunDataset(mpc::workload::DatasetId::kBio2rdf, scale);
  std::cout << "(paper shape: similar times for star queries across "
               "vertex-disjoint strategies;\n MPC much faster on non-star "
               "IEQs — LQ2/LQ8/LQ9/LQ12, YQ1-YQ4, BQ4;\n VP degrades as "
               "intermediate results grow)\n";
  return 0;
}

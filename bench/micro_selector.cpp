// Microbenchmark for the internal-property selection heuristics: forward
// greedy (Algorithm 1) vs backward removal (Section IV-E heuristic 2) on
// community graphs with few vs many properties — the regimes where the
// paper switches between them.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "mpc/selector.h"
#include "rdf/graph.h"

namespace {

using mpc::Rng;

mpc::rdf::RdfGraph CommunityGraph(size_t vertices, size_t edges,
                                  size_t properties, uint64_t seed) {
  Rng rng(seed);
  mpc::rdf::GraphBuilder builder;
  const size_t community = 40;
  for (size_t i = 0; i < edges; ++i) {
    uint64_t u = rng.Below(vertices);
    uint64_t v;
    if (rng.Chance(0.9)) {
      uint64_t base = (u / community) * community;
      v = base + rng.Below(std::min<uint64_t>(community, vertices - base));
    } else {
      v = rng.Below(vertices);
    }
    builder.Add("<t:v" + std::to_string(u) + ">",
                "<t:p" + std::to_string(rng.Below(properties)) + ">",
                "<t:v" + std::to_string(v) + ">");
  }
  return builder.Build();
}

// Args: {property count, worker threads}. The thread sweep exercises the
// parallel per-property cost evaluation; results are bit-identical at
// every thread count, only the wall clock changes.
void BM_GreedySelector(benchmark::State& state) {
  auto graph = CommunityGraph(20000, 60000, state.range(0), 3);
  mpc::core::SelectorOptions options{
      .base = {.k = 8,
               .epsilon = 0.1,
               .num_threads = static_cast<int>(state.range(1))}};
  mpc::core::GreedySelector selector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(graph).num_internal);
  }
}
BENCHMARK(BM_GreedySelector)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_BackwardSelector(benchmark::State& state) {
  auto graph = CommunityGraph(20000, 60000, state.range(0), 3);
  mpc::core::SelectorOptions options{
      .base = {.k = 8,
               .epsilon = 0.1,
               .num_threads = static_cast<int>(state.range(1))}};
  mpc::core::BackwardSelector selector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(graph).num_internal);
  }
}
BENCHMARK(BM_BackwardSelector)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

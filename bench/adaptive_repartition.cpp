// Workload-adaptive repartitioning experiment (src/dynamic/): the same
// deterministic LUBM update stream runs through two maintainers —
//
//   A: the unweighted threshold policy (integer |L_cross| growth only),
//   B: query-weighted drift + hot-vertex migration, with per-property
//      weights derived from a skewed query log
//      (workload -> ComputeWorkloadPropertyWeights, CLI convention
//      weight = 1 + #queries touching the property).
//
// The stream has two phases. A cold drip inserts six brand-new,
// never-queried properties across the cut — enough integer |L_cross|
// growth that both runs escalate identically (migration cannot help: the
// endpoints are high-degree seed vertices). Then five migrants arrive:
// each is a new vertex anchored at one site whose edges all use one HOT
// seed property into another site — the misplaced-vertex shape where a
// full re-run is overkill. Run A's integer signal never fires on them
// (one new crossing property per migrant stays under the slack) so the
// hot properties stay crossing; run B's weighted signal fires
// immediately, and migration moves just the migrant.
//
// Asserted (exit 1 on failure):
//   1. final workload-weighted |L_cross|: B strictly lower than A,
//   2. IEQ share of the query mix (benchmark + skewed log): B >= A,
//   3. at least one batch resolved by migration alone (no repartition),
//   4. mean wall-clock of migration batches < mean of repartition
//      batches (the migration path must not hide a full MPC re-run),
//   5. B's repartition count <= A's.
//
// Usage: ./adaptive_repartition [scale]   (scale 1.0 ~ 10 universities)

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "dynamic/incremental_maintainer.h"
#include "mpc/weighted_selector.h"
#include "workload/lubm.h"

namespace mpc {
namespace {

using dynamic::ApplyResult;
using dynamic::IncrementalMaintainer;
using dynamic::TripleUpdate;
using dynamic::UpdateBatch;
using dynamic::UpdateKind;

struct RunLog {
  std::vector<double> migration_batch_ms;    // migrated, no repartition
  std::vector<double> repartition_batch_ms;  // a full MPC re-run happened
  size_t migration_only_batches = 0;
  size_t migrations = 0;
};

ApplyResult Apply(IncrementalMaintainer& m, const UpdateBatch& batch,
                  RunLog* log) {
  Timer timer;
  ApplyResult r = m.ApplyBatch(batch);
  const double ms = timer.ElapsedMillis();
  log->migrations += r.migrated;
  if (r.repartitioned) {
    log->repartition_batch_ms.push_back(ms);
  } else if (r.migrated > 0) {
    log->migration_batch_ms.push_back(ms);
    if (!r.repartition_triggered) ++log->migration_only_batches;
  }
  return r;
}

TripleUpdate Ins(std::string s, std::string p, std::string o) {
  TripleUpdate u;
  u.kind = UpdateKind::kInsert;
  u.subject = std::move(s);
  u.property = std::move(p);
  u.object = std::move(o);
  return u;
}

/// Workload-weighted |L_cross| of a maintained partitioning, resolved by
/// property NAME against the seed graph's weight vector (repartitions
/// re-intern ids, so positional indexing would lie); properties the
/// workload never saw count 1.0, the unweighted convention.
double WeightedLcross(const IncrementalMaintainer& m,
                      const rdf::RdfGraph& seed,
                      const std::vector<double>& weights) {
  double sum = 0.0;
  for (rdf::PropertyId p = 0; p < m.graph().num_properties(); ++p) {
    if (!m.partitioning().IsCrossingProperty(p)) continue;
    const rdf::PropertyId o =
        seed.property_dict().Lookup(m.graph().PropertyName(p));
    sum += (o != rdf::kInvalidProperty && o < weights.size()) ? weights[o]
                                                              : 1.0;
  }
  return sum;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// Vertices at `site` under the maintainer's current assignment whose
/// names exist in the seed dataset (never a streamed migrant).
std::vector<std::string> OwnedSeedVertices(const IncrementalMaintainer& m,
                                           const rdf::RdfGraph& seed,
                                           uint32_t site, size_t limit) {
  std::vector<std::string> names;
  const std::vector<uint32_t>& part = m.partitioning().assignment().part;
  for (rdf::VertexId v = 0; v < m.graph().num_vertices() &&
                            names.size() < limit;
       ++v) {
    if (part[v] != site) continue;
    std::string name(m.graph().VertexName(v));
    if (seed.vertex_dict().Lookup(name) == rdf::kInvalidVertex) continue;
    names.push_back(std::move(name));
  }
  return names;
}

bool Check(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS  " : "FAIL  ") << what << "\n";
  return ok;
}

}  // namespace
}  // namespace mpc

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);

  workload::LubmOptions lubm;
  lubm.num_universities =
      std::max<uint32_t>(2, static_cast<uint32_t>(10 * scale));
  workload::GeneratedDataset dataset = workload::MakeLubm(lubm);
  std::cout << "LUBM x" << lubm.num_universities << ": "
            << dataset.graph.num_edges() << " triples, "
            << dataset.graph.num_vertices() << " vertices, "
            << dataset.graph.num_properties() << " properties\n";

  core::MpcOptions mpc;
  mpc.base.k = bench::kSites;
  mpc.base.epsilon = bench::kEpsilon;
  mpc.base.num_threads = 0;
  partition::Partitioning seed =
      core::MpcPartitioner(mpc).Partition(dataset.graph);

  // Hot candidates: internal seed properties with some data behind them.
  std::vector<rdf::PropertyId> candidates;
  for (rdf::PropertyId p = 0;
       p < dataset.graph.num_properties() && candidates.size() < 8; ++p) {
    if (!seed.IsCrossingProperty(p) &&
        dataset.graph.PropertyFrequency(p) >= 6) {
      candidates.push_back(p);
    }
  }
  if (candidates.size() < 2) {
    std::cerr << "not enough internal properties to build a skewed log\n";
    return 1;
  }

  // Skewed query log: 2-hop paths through consecutive hot candidates, 30
  // repetitions each — the workload the weighted policy protects.
  std::vector<sparql::QueryGraph> log_parsed;
  std::vector<workload::NamedQuery> query_mix = dataset.benchmark_queries;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string p1(dataset.graph.PropertyName(candidates[i]));
    const std::string p2(dataset.graph.PropertyName(
        candidates[(i + 1) % candidates.size()]));
    const std::string text =
        "SELECT * WHERE { ?x " + p1 + " ?y . ?y " + p2 + " ?z . }";
    workload::NamedQuery nq;
    nq.name = "hot" + std::to_string(i);
    nq.sparql = text;
    query_mix.push_back(nq);
    for (int rep = 0; rep < 30; ++rep) {
      log_parsed.push_back(bench::MustParse(text));
    }
  }
  std::vector<double> weights =
      core::ComputeWorkloadPropertyWeights(log_parsed, dataset.graph);
  for (double& w : weights) w += 1.0;  // CLI convention: 1 + query count

  dynamic::MaintainerOptions base_options;
  base_options.policy.kind = dynamic::RepartitionPolicy::Kind::kThreshold;
  base_options.policy.max_lcross_growth = 0.05;
  base_options.policy.min_lcross_slack = 5;
  base_options.mpc.base.k = bench::kSites;
  base_options.mpc.base.epsilon = bench::kEpsilon;
  base_options.num_threads = 0;

  dynamic::MaintainerOptions weighted_options = base_options;
  weighted_options.property_weights = weights;
  weighted_options.migration.enabled = true;
  weighted_options.migration.max_moves = 8;

  IncrementalMaintainer a(dataset.graph.Clone(), seed, base_options);
  IncrementalMaintainer b(dataset.graph.Clone(), seed, weighted_options);
  RunLog log_a, log_b;

  std::cout << "policies: A = unweighted threshold, B = weighted + "
               "migration (growth 0.05, slack 5, "
            << candidates.size() << " hot properties, weight "
            << Fmt(weights[candidates[0]]) << ")\n\n";
  bench::LeftCell("batch", 16);
  bench::Cell("A |Lx|", 8);
  bench::Cell("A wLx", 8);
  bench::Cell("A rep", 7);
  bench::Cell("B |Lx|", 8);
  bench::Cell("B wLx", 8);
  bench::Cell("B mig", 7);
  bench::Cell("B rep", 7);
  std::cout << "\n";
  auto report = [&](const std::string& label) {
    bench::LeftCell(label, 16);
    bench::Cell(std::to_string(a.partitioning().num_crossing_properties()),
                8);
    bench::Cell(Fmt(WeightedLcross(a, dataset.graph, weights)), 8);
    bench::Cell(std::to_string(a.repartition_count()), 7);
    bench::Cell(std::to_string(b.partitioning().num_crossing_properties()),
                8);
    bench::Cell(Fmt(WeightedLcross(b, dataset.graph, weights)), 8);
    bench::Cell(std::to_string(b.migration_count()), 7);
    bench::Cell(std::to_string(b.repartition_count()), 7);
    std::cout << "\n";
  };

  // Phase 1 — cold drip: six fresh, never-queried properties across the
  // cut between high-degree seed vertices. Migration cannot pay here
  // (moving a high-degree endpoint drags its whole neighborhood across),
  // so both runs take the full re-run.
  std::vector<uint32_t> degree(dataset.graph.num_vertices(), 0);
  for (const rdf::Triple& t : dataset.graph.triples()) {
    ++degree[t.subject];
    ++degree[t.object];
  }
  UpdateBatch cold;
  {
    const std::vector<uint32_t>& part = seed.assignment().part;
    std::vector<std::string> site0, site1;
    for (rdf::VertexId v = 0; v < dataset.graph.num_vertices() &&
                              (site0.size() < 6 || site1.size() < 6);
         ++v) {
      if (degree[v] < 5) continue;
      if (part[v] == 0 && site0.size() < 6) {
        site0.emplace_back(dataset.graph.VertexName(v));
      } else if (part[v] == 1 && site1.size() < 6) {
        site1.emplace_back(dataset.graph.VertexName(v));
      }
    }
    if (site0.size() < 6 || site1.size() < 6) {
      std::cerr << "could not find high-degree vertices on sites 0/1\n";
      return 1;
    }
    for (int i = 0; i < 6; ++i) {
      cold.updates.push_back(
          Ins(site0[i], "<bench:cold" + std::to_string(i) + ">", site1[i]));
    }
  }
  Apply(a, cold, &log_a);
  Apply(b, cold, &log_b);
  report("cold drip");

  // Phase 2 — migrants. Hot properties re-resolved against B's current
  // graph (the cold repartition re-interned ids); targets picked from
  // B's current assignment so each migrant's hot mass points at exactly
  // one site.
  std::vector<std::string> hot_names;
  for (rdf::PropertyId p : candidates) {
    const std::string name(dataset.graph.PropertyName(p));
    const rdf::PropertyId cur = b.graph().property_dict().Lookup(name);
    if (cur != rdf::kInvalidProperty &&
        !b.partitioning().IsCrossingProperty(cur)) {
      hot_names.push_back(name);
    }
    if (hot_names.size() == 5) break;
  }
  if (hot_names.size() < 2) {
    std::cerr << "hot candidates did not survive the cold repartition\n";
    return 1;
  }

  for (size_t i = 0; i < hot_names.size(); ++i) {
    // Hot side: B's least-loaded site (so the balance cap never blocks
    // the move); anchor side: its most-loaded.
    uint32_t s0 = 0, s1 = 0;
    for (uint32_t s = 1; s < b.partitioning().k(); ++s) {
      if (b.partitioning().partition(s).num_owned_vertices <
          b.partitioning().partition(s0).num_owned_vertices) {
        s0 = s;
      }
      if (b.partitioning().partition(s).num_owned_vertices >
          b.partitioning().partition(s1).num_owned_vertices) {
        s1 = s;
      }
    }
    if (s0 == s1) s1 = (s0 + 1) % b.partitioning().k();
    const std::vector<std::string> targets =
        OwnedSeedVertices(b, dataset.graph, s0, 6);
    const std::vector<std::string> anchors =
        OwnedSeedVertices(b, dataset.graph, s1, 1);
    if (targets.size() < 6 || anchors.empty()) {
      std::cerr << "not enough vertices on sites " << s0 << "/" << s1
                << "\n";
      return 1;
    }
    const std::string mig = "<bench:mig" + std::to_string(i) + ">";
    UpdateBatch anchor_batch;
    anchor_batch.updates.push_back(
        Ins(mig, "<bench:anchor" + std::to_string(i) + ">", anchors[0]));
    UpdateBatch hot_batch;
    for (const std::string& target : targets) {
      hot_batch.updates.push_back(Ins(mig, hot_names[i], target));
    }
    Apply(a, anchor_batch, &log_a);
    Apply(b, anchor_batch, &log_b);
    Apply(a, hot_batch, &log_a);
    Apply(b, hot_batch, &log_b);
    report("migrant " + std::to_string(i));
  }

  const double weighted_a = WeightedLcross(a, dataset.graph, weights);
  const double weighted_b = WeightedLcross(b, dataset.graph, weights);
  const double ieq_a = bench::IeqPercent(query_mix, a.CompactPartitioning(),
                                         a.graph());
  const double ieq_b = bench::IeqPercent(query_mix, b.CompactPartitioning(),
                                         b.graph());
  const double mig_ms = Mean(log_b.migration_batch_ms);
  const double rep_ms =
      Mean(log_a.repartition_batch_ms.empty() ? log_b.repartition_batch_ms
                                              : log_a.repartition_batch_ms);

  std::cout << "\nfinal: weighted |L_cross| A=" << Fmt(weighted_a)
            << " B=" << Fmt(weighted_b) << "; IEQ% A=" << Fmt(ieq_a)
            << " B=" << Fmt(ieq_b) << "; repartitions A="
            << a.repartition_count() << " B=" << b.repartition_count()
            << "; migrations B=" << b.migration_count() << "\n";
  std::cout << "batch cost: migration " << Fmt(mig_ms)
            << " ms vs repartition " << Fmt(rep_ms) << " ms\n\n";

  bool ok = true;
  ok &= Check(weighted_b < weighted_a,
              "weighted |L_cross|: adaptive run strictly lower (" +
                  Fmt(weighted_b) + " < " + Fmt(weighted_a) + ")");
  ok &= Check(ieq_b >= ieq_a, "IEQ share of the query mix: no worse (" +
                                  Fmt(ieq_b) + " >= " + Fmt(ieq_a) + ")");
  ok &= Check(log_b.migration_only_batches >= 1,
              "at least one batch resolved by migration alone (" +
                  std::to_string(log_b.migration_only_batches) + ")");
  ok &= Check(!log_b.migration_batch_ms.empty() && rep_ms > 0.0 &&
                  mig_ms < rep_ms,
              "migration batches cheaper than repartition batches (" +
                  Fmt(mig_ms) + " ms < " + Fmt(rep_ms) + " ms)");
  ok &= Check(b.repartition_count() <= a.repartition_count(),
              "adaptive run repartitions no more often");
  return ok ? 0 : 1;
}

#ifndef MPC_BENCH_BENCH_UTIL_H_
#define MPC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "exec/query_classifier.h"
#include "mpc/mpc_partitioner.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "sparql/parser.h"
#include "sparql/shape.h"
#include "workload/datasets.h"

namespace mpc::bench {

inline constexpr uint32_t kSites = 8;
inline constexpr double kEpsilon = 0.1;

/// The four partitioning strategies of the paper's evaluation, by table
/// name.
inline std::vector<std::string> StrategyNames() {
  return {"MPC", "Subject_Hash", "VP", "METIS"};
}

/// Instantiates the named strategy behind the common Partitioner
/// interface. num_threads follows the shared convention (0 = hardware
/// concurrency, 1 = serial).
inline std::unique_ptr<partition::Partitioner> MakeStrategy(
    const std::string& name, uint64_t seed = 1, int num_threads = 1) {
  partition::PartitionerOptions base{.k = kSites,
                                     .epsilon = kEpsilon,
                                     .seed = seed,
                                     .num_threads = num_threads};
  if (name == "MPC" || name == "MPC-Exact") {
    core::MpcOptions options;
    options.base = base;
    if (name == "MPC-Exact") {
      options.strategy = core::SelectionStrategy::kExact;
    }
    return std::make_unique<core::MpcPartitioner>(options);
  }
  if (name == "Subject_Hash") {
    return std::make_unique<partition::SubjectHashPartitioner>(base);
  }
  if (name == "VP") {
    return std::make_unique<partition::VpPartitioner>(base);
  }
  if (name == "METIS") {
    return std::make_unique<partition::EdgeCutPartitioner>(base);
  }
  std::cerr << "unknown strategy " << name << "\n";
  std::abort();
}

/// Runs the named strategy, reporting per-stage timings and thread usage
/// through the unified RunStats that every Partitioner now fills
/// (stats.total_millis is the strategy's partitioning time).
inline partition::Partitioning RunStrategy(
    const std::string& name, const rdf::RdfGraph& graph,
    partition::RunStats* stats = nullptr, uint64_t seed = 1,
    int num_threads = 1) {
  return MakeStrategy(name, seed, num_threads)->Partition(graph, stats);
}

inline sparql::QueryGraph MustParse(const std::string& text) {
  Result<sparql::QueryGraph> q = sparql::SparqlParser::Parse(text);
  if (!q.ok()) {
    std::cerr << "query parse failed: " << q.status().ToString() << "\n"
              << text << "\n";
    std::abort();
  }
  return std::move(q).value();
}

/// IEQ share (%) of `queries` under `partitioning`. For vertex-disjoint
/// partitionings this is the Section V-A classifier; for VP it is the
/// single-site locality test. `stars_only` restricts credit to star
/// queries (the plain Subject_Hash / METIS columns of Table III, before
/// their "+" crossing-property extension).
inline double IeqPercent(const std::vector<workload::NamedQuery>& queries,
                         const partition::Partitioning& partitioning,
                         const rdf::RdfGraph& graph,
                         bool stars_only = false) {
  if (queries.empty()) return 0.0;
  size_t ieq = 0;
  for (const workload::NamedQuery& nq : queries) {
    sparql::QueryGraph q = MustParse(nq.sparql);
    bool independent;
    if (partitioning.kind() == partition::PartitioningKind::kEdgeDisjoint) {
      independent = exec::IsVpLocalQuery(q, partitioning, graph);
    } else if (stars_only) {
      independent = sparql::IsStarQuery(q);
    } else {
      independent = exec::ClassifyQuery(q, partitioning, graph)
                        .independently_executable();
    }
    ieq += independent;
  }
  return 100.0 * static_cast<double>(ieq) /
         static_cast<double>(queries.size());
}

/// Five-number summary used by Fig. 8's candlesticks.
struct Quartiles {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};

inline Quartiles Summarize(std::vector<double> values) {
  Quartiles q;
  if (values.empty()) return q;
  std::sort(values.begin(), values.end());
  auto at = [&](double frac) {
    size_t idx = static_cast<size_t>(frac * (values.size() - 1));
    return values[idx];
  };
  q.min = values.front();
  q.q1 = at(0.25);
  q.median = at(0.5);
  q.q3 = at(0.75);
  q.max = values.back();
  return q;
}

/// Fixed-width cell helpers for the table printers.
inline void Cell(const std::string& text, int width) {
  std::cout << std::right << std::setw(width) << text;
}
inline void LeftCell(const std::string& text, int width) {
  std::cout << std::left << std::setw(width) << text;
}

/// Scale factor from the first non-flag argument (default 1.0) so every
/// bench can be run smaller/larger: `./table2_partition_quality 0.25`.
/// Flag-style arguments ("--trace-out=...") are skipped, so the scale
/// and the observability flags compose in any order.
inline double ScaleFromArgs(int argc, char** argv, double fallback = 1.0) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) continue;
    double value = std::atof(arg.c_str());
    if (value > 0) return value;
  }
  return fallback;
}

/// Honors the CLI's observability flags in any bench binary:
///
///   ./table2_partition_quality 0.25 --trace-out=t.json --trace-summary
///
/// Construct once at the top of main(); tracing starts immediately when
/// any flag asks for it and the exports are written when the scope is
/// destroyed. Unknown flags are left alone (the bench may have its own).
class ObsScope {
 public:
  ObsScope(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_out_ = arg.substr(12);
      } else if (arg.rfind("--metrics-out=", 0) == 0) {
        metrics_out_ = arg.substr(14);
      } else if (arg == "--trace-summary") {
        trace_summary_ = true;
      }
    }
    if (!trace_out_.empty() || trace_summary_) obs::StartTracing();
  }

  ~ObsScope() {
    obs::StopTracing();
    if (!trace_out_.empty()) {
      Status st = obs::WriteTrace(trace_out_);
      if (st.ok()) {
        std::cerr << "trace written to: " << trace_out_ << "\n";
      } else {
        std::cerr << st.ToString() << "\n";
      }
    }
    if (trace_summary_) std::cout << obs::TraceToTextTree();
    if (!metrics_out_.empty()) {
      Status st = obs::MetricsRegistry::Default().WriteJson(metrics_out_);
      if (st.ok()) {
        std::cerr << "metrics written to: " << metrics_out_ << "\n";
      } else {
        std::cerr << st.ToString() << "\n";
      }
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  std::string trace_out_;
  std::string metrics_out_;
  bool trace_summary_ = false;
};

}  // namespace mpc::bench

#endif  // MPC_BENCH_BENCH_UTIL_H_

// Ablation: workload-weighted internal property selection (the Section II
// extension) vs the paper's uniform greedy (Algorithm 1).
//
// Scenario: two bridge properties chain overlapping bands of communities;
// the balance cap admits either bridge as internal (together with the
// community-local property) but not both. The workload only queries
// bridgeB. Uniform greedy breaks the tie blindly and picks bridgeA;
// weighted MPC picks bridgeB and localizes the whole workload.

#include "bench_util.h"

#include "exec/query_classifier.h"
#include "mpc/weighted_selector.h"

namespace {

using namespace mpc;

rdf::RdfGraph ContentionGraph() {
  rdf::GraphBuilder builder;
  auto cv = [](uint32_t c, uint32_t i) {
    return "<t:c" + std::to_string(c) + "v" + std::to_string(i) + ">";
  };
  const uint32_t kCommunities = 64, kSize = 10;
  for (uint32_t c = 0; c < kCommunities; ++c) {
    for (uint32_t i = 0; i + 1 < kSize; ++i) {
      builder.Add(cv(c, i), "<t:local>", cv(c, i + 1));
    }
  }
  // bridgeA: communities 0..5; bridgeB: 3..8 (overlap 3..5). Either one
  // plus local makes a 60-vertex WCC; both together make 90 > cap.
  for (uint32_t c = 0; c < 5; ++c) {
    builder.Add(cv(c, 0), "<t:bridgeA>", cv(c + 1, 0));
  }
  for (uint32_t c = 3; c < 8; ++c) {
    builder.Add(cv(c, 0), "<t:bridgeB>", cv(c + 1, 0));
  }
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  mpc::bench::ObsScope obs(argc, argv);
  rdf::RdfGraph graph = ContentionGraph();
  // |V| = 640; k=10, eps=0 -> cap 64: one 6-community band fits, the
  // 9-community union of both bands does not.
  std::cout << "=== Ablation: workload-weighted vs uniform MPC ===\n"
            << "contention graph: " << graph.num_vertices()
            << " vertices, cap = " << core::BalanceCap(graph, 10, 0.0)
            << "\n\n";

  std::vector<sparql::QueryGraph> workload;
  for (int i = 0; i < 20; ++i) {
    workload.push_back(bench::MustParse(
        "SELECT * WHERE { ?a <t:bridgeB> ?b . ?b <t:local> ?c . ?c "
        "<t:local> ?d . }"));
  }

  auto evaluate = [&](const char* name, core::SelectionStrategy strategy) {
    core::MpcOptions options;
    options.base.k = 10;
    options.base.epsilon = 0.0;
    options.strategy = strategy;
    if (strategy == core::SelectionStrategy::kWeighted) {
      options.property_weights =
          core::ComputeWorkloadPropertyWeights(workload, graph);
    }
    core::MpcPartitioner partitioner(options);
    core::MpcRunStats stats;
    partition::Partitioning p = partitioner.Partition(graph, &stats);
    size_t ieq = 0;
    for (const sparql::QueryGraph& q : workload) {
      ieq += exec::ClassifyQuery(q, p, graph).independently_executable();
    }
    rdf::PropertyId bridge_a = graph.property_dict().Lookup("<t:bridgeA>");
    rdf::PropertyId bridge_b = graph.property_dict().Lookup("<t:bridgeB>");
    std::cout << name << ": |Lin| = " << stats.selection.num_internal
              << ", bridgeA internal = "
              << (stats.selection.internal[bridge_a] ? "yes" : "no ")
              << ", bridgeB internal = "
              << (stats.selection.internal[bridge_b] ? "yes" : "no ")
              << ", workload IEQ = "
              << FormatDouble(100.0 * ieq / workload.size(), 1) << "%\n";
  };
  evaluate("uniform ", core::SelectionStrategy::kGreedy);
  evaluate("weighted", core::SelectionStrategy::kWeighted);
  std::cout << "\n(expected: both internalize one bridge; only the "
               "weighted run internalizes the one the workload uses, "
               "making every query independently executable)\n";
  return 0;
}

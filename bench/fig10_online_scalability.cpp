// Fig. 10: online scalability — per-query response time of the 14 LUBM
// queries and the mean response time over a WatDiv query-log sample, as
// the graph grows, all under MPC.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double base = bench::ScaleFromArgs(argc, argv, 0.25);
  mpc::bench::ObsScope obs(argc, argv);
  const std::vector<double> scales = {base, base * 2, base * 4, base * 8};

  std::cout << "=== Fig. 10: Scalability of Online Performance (MPC, "
               "k=8) ===\n--- LUBM (ms per query) ---\n";
  bench::LeftCell("Query", 7);
  std::vector<workload::GeneratedDataset> lubms;
  for (double scale : scales) {
    lubms.push_back(workload::MakeDataset(workload::DatasetId::kLubm,
                                          scale));
    bench::Cell(FormatWithCommas(lubms.back().graph.num_edges()) + "t", 14);
  }
  std::cout << "\n";

  std::vector<exec::Cluster> clusters;
  for (const auto& d : lubms) {
    clusters.push_back(
        exec::Cluster::Build(bench::RunStrategy("MPC", d.graph, nullptr)));
  }
  const size_t num_queries = lubms[0].benchmark_queries.size();
  for (size_t qi = 0; qi < num_queries; ++qi) {
    bench::LeftCell(lubms[0].benchmark_queries[qi].name, 7);
    for (size_t si = 0; si < scales.size(); ++si) {
      sparql::QueryGraph q =
          bench::MustParse(lubms[si].benchmark_queries[qi].sparql);
      exec::DistributedExecutor executor(clusters[si], lubms[si].graph);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) {
        std::cerr << "query failed: " << response.status().ToString()
                  << "\n";
        return 1;
      }
      bench::Cell(FormatDouble(response->stats.total_millis, 1), 14);
    }
    std::cout << "\n";
  }

  std::cout << "--- WatDiv (mean ms over a 200-query log sample) ---\n";
  bench::LeftCell("", 7);
  std::vector<workload::GeneratedDataset> watdivs;
  for (double scale : scales) {
    watdivs.push_back(
        workload::MakeDataset(workload::DatasetId::kWatdiv, scale));
    bench::Cell(FormatWithCommas(watdivs.back().graph.num_edges()) + "t",
                14);
  }
  std::cout << "\n";
  bench::LeftCell("mean", 7);
  for (const auto& d : watdivs) {
    exec::Cluster cluster =
        exec::Cluster::Build(bench::RunStrategy("MPC", d.graph, nullptr));
    exec::DistributedExecutor::Options options;
    options.max_rows = 200000;
    exec::DistributedExecutor executor(cluster, d.graph, options);
    std::vector<workload::NamedQuery> log =
        workload::MakeQueryLog(workload::DatasetId::kWatdiv, d.graph, 200);
    double total = 0;
    for (const workload::NamedQuery& nq : log) {
      sparql::QueryGraph q = bench::MustParse(nq.sparql);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) {
        std::cerr << "query failed: " << response.status().ToString()
                  << "\n";
        return 1;
      }
      total += response->stats.total_millis;
    }
    bench::Cell(FormatDouble(total / log.size(), 1), 14);
  }
  std::cout << "\n(paper shape: response times grow slowly with graph "
               "size — MPC remains scalable)\n";
  return 0;
}

// Fig. 8: online performance over real query logs (WatDiv / DBpedia /
// LGD analogues): per-strategy five-number summary (min, Q1, median,
// Q3, max) of query response times over a sampled log, matching the
// paper's candlestick plots.

#include "bench_util.h"

namespace {

void RunDataset(mpc::workload::DatasetId id, double scale,
                size_t log_size) {
  using namespace mpc;
  workload::GeneratedDataset d = workload::MakeDataset(id, scale);
  std::vector<workload::NamedQuery> log =
      workload::MakeQueryLog(id, d.graph, log_size);

  std::cout << "--- " << d.name << " (" << log.size() << " queries) ---\n";
  bench::LeftCell("Strategy", 14);
  for (const char* c : {"min", "Q1", "median", "Q3", "max", "IEQ%"}) {
    bench::Cell(c, 11);
  }
  std::cout << "\n";

  for (const std::string& strategy : bench::StrategyNames()) {
    exec::Cluster cluster = exec::Cluster::Build(
        bench::RunStrategy(strategy, d.graph, nullptr));
    exec::DistributedExecutor::Options options;
    options.max_rows = 200000;  // per-site safety valve for huge scans
    exec::DistributedExecutor executor(cluster, d.graph, options);

    std::vector<double> times;
    size_t independent = 0;
    times.reserve(log.size());
    for (const workload::NamedQuery& nq : log) {
      sparql::QueryGraph q = bench::MustParse(nq.sparql);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) {
        std::cerr << nq.name << " failed: " << response.status().ToString()
                  << "\n";
        std::exit(1);
      }
      times.push_back(response->stats.total_millis);
      independent += response->stats.independent;
    }
    bench::Quartiles quartiles = bench::Summarize(times);
    bench::LeftCell(strategy, 14);
    bench::Cell(FormatDouble(quartiles.min, 1), 11);
    bench::Cell(FormatDouble(quartiles.q1, 1), 11);
    bench::Cell(FormatDouble(quartiles.median, 1), 11);
    bench::Cell(FormatDouble(quartiles.q3, 1), 11);
    bench::Cell(FormatDouble(quartiles.max, 1), 11);
    bench::Cell(FormatDouble(100.0 * independent / log.size(), 1) + "%",
                11);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = mpc::bench::ScaleFromArgs(argc, argv, 0.5);
  mpc::bench::ObsScope obs(argc, argv);
  const size_t log_size = argc > 2 ? std::atoi(argv[2]) : 1000;
  std::cout << "=== Fig. 8: Online Performance over Query Logs (k=8, "
               "scale "
            << scale << ") ===\n";
  RunDataset(mpc::workload::DatasetId::kWatdiv, scale, log_size);
  RunDataset(mpc::workload::DatasetId::kDbpedia, scale, log_size);
  RunDataset(mpc::workload::DatasetId::kLgd, scale, log_size);
  std::cout << "(paper shape: minima/Q1 similar across vertex-disjoint "
               "strategies;\n maxima/Q3 diverge sharply with MPC best; "
               "LGD gaps smallest — its log is almost all stars)\n";
  return 0;
}

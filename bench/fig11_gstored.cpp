// Fig. 11: partitioning-agnostic system experiment — gStoreD-style
// partial-evaluation-and-assembly runtime under the three vertex-disjoint
// partitionings, on LUBM's non-star queries and all YAGO2 queries. Fewer
// crossing properties => fewer local partial matches => faster.

#include "bench_util.h"

#include "exec/gstored_executor.h"

namespace {

void RunDataset(mpc::workload::DatasetId id, double scale,
                bool non_star_only) {
  using namespace mpc;
  workload::GeneratedDataset d = workload::MakeDataset(id, scale);

  std::vector<std::string> strategies = {"MPC", "Subject_Hash", "METIS"};
  std::vector<exec::Cluster> clusters;
  for (const std::string& s : strategies) {
    clusters.push_back(
        exec::Cluster::Build(bench::RunStrategy(s, d.graph, nullptr)));
  }

  std::cout << "--- " << d.name
            << " (gStoreD runtime: total ms | local partial matches) "
               "---\n";
  bench::LeftCell("Query", 7);
  for (const std::string& s : strategies) bench::Cell(s, 22);
  std::cout << "\n";

  for (const workload::NamedQuery& nq : d.benchmark_queries) {
    if (non_star_only && nq.is_star) continue;
    sparql::QueryGraph q = bench::MustParse(nq.sparql);
    bench::LeftCell(nq.name, 7);
    for (exec::Cluster& cluster : clusters) {
      exec::GStoredExecutor executor(cluster, d.graph);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) {
        std::cerr << nq.name << " failed: " << response.status().ToString()
                  << "\n";
        std::exit(1);
      }
      bench::Cell(FormatDouble(response->stats.total_millis, 1) + " | " +
                      FormatWithCommas(response->stats.local_rows),
                  22);
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = mpc::bench::ScaleFromArgs(argc, argv);
  mpc::bench::ObsScope obs(argc, argv);
  std::cout << "=== Fig. 11: Partitioning-agnostic (gStoreD) Experiments "
               "(k=8, scale "
            << scale << ") ===\n";
  RunDataset(mpc::workload::DatasetId::kLubm, scale,
             /*non_star_only=*/true);
  RunDataset(mpc::workload::DatasetId::kYago2, scale,
             /*non_star_only=*/false);
  std::cout << "(paper shape: MPC always smallest — fewer crossing "
               "properties mean fewer local partial matches)\n";
  return 0;
}

// Table V: per-stage evaluation (QDT/LET/JT/Total) of the YAGO2 (YQ1-4)
// and Bio2RDF (BQ1-5) benchmark queries under MPC. All are IEQs, so JT
// is 0 across the board.

#include "bench_util.h"

namespace {

void RunDataset(mpc::workload::DatasetId id, double scale) {
  using namespace mpc;
  workload::GeneratedDataset d = workload::MakeDataset(id, scale);
  exec::Cluster cluster =
      exec::Cluster::Build(bench::RunStrategy("MPC", d.graph, nullptr));
  exec::DistributedExecutor executor(cluster, d.graph);

  std::cout << "--- " << d.name << " ---\n";
  bench::LeftCell("Stage", 8);
  for (const workload::NamedQuery& q : d.benchmark_queries) {
    bench::Cell(q.name, 10);
  }
  std::cout << "\n";

  std::vector<exec::ExecutionStats> stats(d.benchmark_queries.size());
  for (size_t i = 0; i < d.benchmark_queries.size(); ++i) {
    sparql::QueryGraph q = bench::MustParse(d.benchmark_queries[i].sparql);
    auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
    if (response.ok()) stats[i] = response->stats;
    if (!response.ok()) {
      std::cerr << d.benchmark_queries[i].name << " failed: "
                << response.status().ToString() << "\n";
      std::exit(1);
    }
  }
  auto row = [&](const char* label, auto getter) {
    bench::LeftCell(label, 8);
    for (const exec::ExecutionStats& s : stats) {
      bench::Cell(FormatDouble(getter(s), 1), 10);
    }
    std::cout << "\n";
  };
  row("QDT", [](const auto& s) { return s.decomposition_millis; });
  row("LET", [](const auto& s) { return s.local_eval_millis; });
  row("JT", [](const auto& s) { return s.join_millis; });
  row("Total", [](const auto& s) { return s.total_millis; });
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = mpc::bench::ScaleFromArgs(argc, argv);
  mpc::bench::ObsScope obs(argc, argv);
  std::cout << "=== Table V: Evaluation of Each Stage on YAGO2 and "
               "Bio2RDF under MPC (ms, scale "
            << scale << ") ===\n";
  RunDataset(mpc::workload::DatasetId::kYago2, scale);
  RunDataset(mpc::workload::DatasetId::kBio2rdf, scale);
  std::cout << "(paper shape: JT = 0 everywhere; all benchmark queries "
               "are IEQs under MPC)\n";
  return 0;
}

// Table IV: per-stage evaluation of LQ1-LQ14 on LUBM under MPC:
// QDT (query decomposition time), LET (local evaluation time),
// JT (join time), and total. All LUBM benchmark queries are IEQs under
// MPC, so JT must print 0 on every row.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);

  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kLubm, scale);
  exec::Cluster cluster =
      exec::Cluster::Build(bench::RunStrategy("MPC", d.graph, nullptr));
  exec::DistributedExecutor executor(cluster, d.graph);

  std::cout << "=== Table IV: Evaluation of Each Stage on LUBM under MPC "
               "(ms, scale "
            << scale << ") ===\n";
  bench::LeftCell("Stage", 8);
  for (const workload::NamedQuery& q : d.benchmark_queries) {
    bench::Cell(q.name, 9);
  }
  std::cout << "\n";

  std::vector<exec::ExecutionStats> stats(d.benchmark_queries.size());
  for (size_t i = 0; i < d.benchmark_queries.size(); ++i) {
    sparql::QueryGraph q = bench::MustParse(d.benchmark_queries[i].sparql);
    auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
    if (response.ok()) stats[i] = response->stats;
    if (!response.ok()) {
      std::cerr << d.benchmark_queries[i].name << " failed: "
                << response.status().ToString() << "\n";
      return 1;
    }
  }

  auto row = [&](const char* label, auto getter) {
    bench::LeftCell(label, 8);
    for (const exec::ExecutionStats& s : stats) {
      bench::Cell(FormatDouble(getter(s), 1), 9);
    }
    std::cout << "\n";
  };
  row("QDT", [](const auto& s) { return s.decomposition_millis; });
  row("LET", [](const auto& s) { return s.local_eval_millis; });
  row("JT", [](const auto& s) { return s.join_millis; });
  row("Total", [](const auto& s) { return s.total_millis; });

  bench::LeftCell("Results", 8);
  for (const exec::ExecutionStats& s : stats) {
    bench::Cell(FormatWithCommas(s.num_results), 9);
  }
  std::cout << "\n(paper shape: JT = 0 for all queries — every LUBM "
               "benchmark query is an IEQ under MPC;\n totals dominated by "
               "LET for low-selectivity queries like LQ6/LQ14)\n";
  return 0;
}

// Ablation: WORQ-style Bloom-join reduction for decomposed (non-IEQ)
// queries — one of the run-time optimizations Section II cites as
// orthogonal to the partitioning strategy. Measured on the baseline
// partitionings, where non-IEQs are common; MPC needs it least because
// it decomposes fewer queries in the first place.

#include "bench_util.h"

namespace {

void RunStrategyRow(const std::string& strategy,
                    const mpc::workload::GeneratedDataset& d,
                    const std::vector<mpc::workload::NamedQuery>& queries) {
  using namespace mpc;
  exec::Cluster cluster =
      exec::Cluster::Build(bench::RunStrategy(strategy, d.graph, nullptr));

  size_t shipped_plain = 0, shipped_bloom = 0, dropped = 0, non_ieq = 0;
  for (const workload::NamedQuery& nq : queries) {
    sparql::QueryGraph q = bench::MustParse(nq.sparql);
    {
      exec::DistributedExecutor::Options options;
      options.max_rows = 200000;
      exec::DistributedExecutor executor(cluster, d.graph, options);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) std::exit(1);
      if (response->stats.independent) {
        continue;  // reduction only affects non-IEQs
      }
      ++non_ieq;
      shipped_plain += response->stats.shipped_bytes;
    }
    {
      exec::DistributedExecutor::Options options;
      options.max_rows = 200000;
      options.bloom_reduction = true;
      exec::DistributedExecutor executor(cluster, d.graph, options);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) std::exit(1);
      shipped_bloom += response->stats.shipped_bytes;
      dropped += response->stats.bloom_dropped_rows;
    }
  }
  bench::LeftCell(strategy, 14);
  bench::Cell(FormatWithCommas(non_ieq), 10);
  bench::Cell(FormatWithCommas(shipped_plain / 1024) + " KiB", 16);
  bench::Cell(FormatWithCommas(shipped_bloom / 1024) + " KiB", 16);
  bench::Cell(shipped_plain == 0
                  ? "-"
                  : FormatDouble(100.0 * (1.0 - static_cast<double>(
                                                    shipped_bloom) /
                                                    shipped_plain),
                                 1) + "%",
              10);
  bench::Cell(FormatWithCommas(dropped), 14);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv, 0.5);
  mpc::bench::ObsScope obs(argc, argv);
  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kWatdiv, scale);
  std::vector<workload::NamedQuery> queries =
      workload::MakeQueryLog(workload::DatasetId::kWatdiv, d.graph, 300);

  std::cout << "=== Ablation: Bloom-join reduction on decomposed queries "
               "(WatDiv log, k=8, scale "
            << scale << ") ===\n";
  bench::LeftCell("Strategy", 14);
  bench::Cell("non-IEQs", 10);
  bench::Cell("shipped (off)", 16);
  bench::Cell("shipped (on)", 16);
  bench::Cell("saved", 10);
  bench::Cell("rows dropped", 14);
  std::cout << "\n";
  RunStrategyRow("MPC", d, queries);
  RunStrategyRow("Subject_Hash", d, queries);
  RunStrategyRow("METIS", d, queries);
  std::cout << "(expected: large byte savings for the baselines' many "
               "non-IEQs; MPC both ships less to begin with and has fewer "
               "non-IEQs to reduce)\n";
  return 0;
}

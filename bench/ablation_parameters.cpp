// Ablation: how MPC's partitioning quality responds to its two knobs —
// the imbalance tolerance epsilon (Definition 4.1) and the number of
// sites k. More tolerance or fewer sites loosen the WCC cap, letting
// more properties become internal.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);
  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kWatdiv, scale);
  std::cout << "=== Ablation: epsilon and k sweeps on WatDiv (scale "
            << scale << ") ===\n";

  std::cout << "--- epsilon sweep (k=8) ---\n";
  bench::Cell("epsilon", 9);
  bench::Cell("|Lin|", 8);
  bench::Cell("|Lcross|", 10);
  bench::Cell("|Ec|", 12);
  bench::Cell("balance", 10);
  std::cout << "\n";
  for (double epsilon : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    core::MpcOptions options;
    options.base.k = 8;
    options.base.epsilon = epsilon;
    core::MpcPartitioner partitioner(options);
    core::MpcRunStats stats;
    partition::Partitioning p = partitioner.Partition(d.graph, &stats);
    bench::Cell(FormatDouble(epsilon, 2), 9);
    bench::Cell(FormatWithCommas(stats.selection.num_internal), 8);
    bench::Cell(FormatWithCommas(p.num_crossing_properties()), 10);
    bench::Cell(FormatWithCommas(p.num_crossing_edges()), 12);
    bench::Cell(FormatDouble(p.BalanceRatio(), 3), 10);
    std::cout << "\n";
  }

  std::cout << "--- k sweep (epsilon=0.1) ---\n";
  bench::Cell("k", 5);
  bench::Cell("|Lin|", 8);
  bench::Cell("|Lcross|", 10);
  bench::Cell("|Ec|", 12);
  bench::Cell("balance", 10);
  std::cout << "\n";
  for (uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    core::MpcOptions options;
    options.base.k = k;
    options.base.epsilon = 0.1;
    core::MpcPartitioner partitioner(options);
    core::MpcRunStats stats;
    partition::Partitioning p = partitioner.Partition(d.graph, &stats);
    bench::Cell(std::to_string(k), 5);
    bench::Cell(FormatWithCommas(stats.selection.num_internal), 8);
    bench::Cell(FormatWithCommas(p.num_crossing_properties()), 10);
    bench::Cell(FormatWithCommas(p.num_crossing_edges()), 12);
    bench::Cell(FormatDouble(p.BalanceRatio(), 3), 10);
    std::cout << "\n";
  }
  std::cout << "(expected: |Lin| grows with epsilon and shrinks with k — "
               "the cap (1+eps)|V|/k governs both)\n";
  return 0;
}

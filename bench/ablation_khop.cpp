// Ablation: the space cost of h-hop replication (Section I-A) — the
// paper restricts itself to 1-hop because deeper replication "increases
// the space cost and the data consistency maintenance overhead". This
// quantifies that growth per strategy on LUBM and YAGO2.

#include "bench_util.h"

#include "partition/replication_analysis.h"

namespace {

void RunDataset(mpc::workload::DatasetId id, double scale) {
  using namespace mpc;
  workload::GeneratedDataset d = workload::MakeDataset(id, scale);
  std::cout << "--- " << d.name << " ("
            << FormatWithCommas(d.graph.num_edges())
            << " triples) — replication ratio / max-site triples ---\n";
  bench::LeftCell("Strategy", 14);
  for (int hop = 1; hop <= 3; ++hop) {
    bench::Cell(std::to_string(hop) + "-hop", 22);
  }
  std::cout << "\n";
  for (const char* strategy : {"MPC", "Subject_Hash", "METIS"}) {
    partition::Partitioning p =
        bench::RunStrategy(strategy, d.graph, nullptr);
    auto costs = partition::AnalyzeKHopReplication(d.graph, p, 3);
    bench::LeftCell(strategy, 14);
    for (const partition::ReplicationCost& cost : costs) {
      bench::Cell(FormatDouble(cost.replication_ratio, 2) + "x / " +
                      FormatWithCommas(cost.max_site_triples),
                  22);
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = mpc::bench::ScaleFromArgs(argc, argv, 0.5);
  mpc::bench::ObsScope obs(argc, argv);
  std::cout << "=== Ablation: space cost of h-hop replication (k=8, "
               "scale "
            << scale << ") ===\n";
  RunDataset(mpc::workload::DatasetId::kLubm, scale);
  RunDataset(mpc::workload::DatasetId::kYago2, scale);
  std::cout << "(expected: costs explode with h — the paper's reason for "
               "staying at 1-hop; MPC's balanced low-replication "
               "partitions grow slowest)\n";
  return 0;
}

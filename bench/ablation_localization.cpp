// Ablation: property-presence site localization (executor option
// site_pruning) — the simplest sound form of the query localization the
// paper leaves as future work. Reports per-dataset how many site
// evaluations the benchmark queries and a query log save.

#include "bench_util.h"

namespace {

void RunDataset(mpc::workload::DatasetId id, double scale) {
  using namespace mpc;
  workload::GeneratedDataset d = workload::MakeDataset(id, scale);
  std::vector<workload::NamedQuery> queries = d.benchmark_queries;
  if (queries.empty()) {
    queries = workload::MakeQueryLog(id, d.graph, 300);
  }
  exec::Cluster cluster =
      exec::Cluster::Build(bench::RunStrategy("MPC", d.graph, nullptr));

  size_t with_pruning = 0, without_pruning = 0, pruned = 0;
  double time_with = 0, time_without = 0;
  for (const workload::NamedQuery& nq : queries) {
    sparql::QueryGraph q = bench::MustParse(nq.sparql);
    {
      exec::DistributedExecutor::Options options;
      options.site_pruning = true;
      options.max_rows = 200000;
      exec::DistributedExecutor executor(cluster, d.graph, options);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) std::exit(1);
      with_pruning += response->stats.sites_evaluated;
      pruned += response->stats.sites_pruned;
      time_with += response->stats.total_millis;
    }
    {
      exec::DistributedExecutor::Options options;
      options.site_pruning = false;
      options.max_rows = 200000;
      exec::DistributedExecutor executor(cluster, d.graph, options);
      auto response = executor.Execute(exec::QueryRequest::FromQuery(q));
      if (!response.ok()) std::exit(1);
      without_pruning += response->stats.sites_evaluated;
      time_without += response->stats.total_millis;
    }
  }
  bench::LeftCell(d.name, 10);
  bench::Cell(FormatWithCommas(without_pruning), 14);
  bench::Cell(FormatWithCommas(with_pruning), 14);
  bench::Cell(FormatDouble(100.0 * pruned /
                               std::max<size_t>(1, without_pruning),
                           1) +
                  "%",
              10);
  bench::Cell(FormatDouble(time_without / queries.size(), 1), 13);
  bench::Cell(FormatDouble(time_with / queries.size(), 1), 13);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = mpc::bench::ScaleFromArgs(argc, argv, 0.5);
  mpc::bench::ObsScope obs(argc, argv);
  std::cout << "=== Ablation: site localization under MPC (k=8, scale "
            << scale << ") ===\n";
  mpc::bench::LeftCell("Dataset", 10);
  mpc::bench::Cell("site-evals off", 14);
  mpc::bench::Cell("site-evals on", 14);
  mpc::bench::Cell("pruned", 10);
  mpc::bench::Cell("avg ms (off)", 13);
  mpc::bench::Cell("avg ms (on)", 13);
  std::cout << "\n";
  RunDataset(mpc::workload::DatasetId::kLubm, scale);
  RunDataset(mpc::workload::DatasetId::kYago2, scale);
  RunDataset(mpc::workload::DatasetId::kBio2rdf, scale);
  RunDataset(mpc::workload::DatasetId::kLgd, scale);
  std::cout << "(modular datasets — Bio2RDF's per-module vocabularies, "
               "LGD's tile tags — prune the most sites)\n";
  return 0;
}

// Microbenchmark for the hand-rolled multilevel min edge-cut partitioner
// (the METIS stand-in): throughput across sizes and k, plus the quality
// margin over random partitioning reported as a counter.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "metis/coarsen.h"
#include "metis/csr_graph.h"
#include "metis/initial_partition.h"
#include "metis/partitioner.h"

namespace {

using mpc::Rng;
using namespace mpc::metis;

CsrGraph CommunityGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  const size_t community = 50;
  edges.reserve(n * 3);
  for (size_t i = 0; i < n * 3; ++i) {
    uint32_t u = static_cast<uint32_t>(rng.Below(n));
    uint32_t v;
    if (rng.Chance(0.92)) {
      uint64_t base = (u / community) * community;
      v = static_cast<uint32_t>(
          base + rng.Below(std::min<uint64_t>(community, n - base)));
    } else {
      v = static_cast<uint32_t>(rng.Below(n));
    }
    edges.push_back({u, v, 1});
  }
  return CsrGraph::FromEdges(n, edges);
}

void BM_MultilevelPartition(benchmark::State& state) {
  const size_t n = state.range(0);
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  CsrGraph graph = CommunityGraph(n, 11);
  MlpOptions options;
  options.k = k;
  options.epsilon = 0.1;
  MultilevelPartitioner partitioner(options);

  uint64_t cut = 0, random_cut = 0;
  for (auto _ : state) {
    auto part = partitioner.Partition(graph);
    benchmark::DoNotOptimize(part.data());
    cut = EdgeCut(graph, part);
  }
  Rng rng(12);
  random_cut = EdgeCut(graph, RandomPartition(graph, k, rng));
  state.counters["edge_cut"] = static_cast<double>(cut);
  state.counters["random_cut"] = static_cast<double>(random_cut);
  state.counters["cut_vs_random"] =
      random_cut == 0 ? 0.0
                      : static_cast<double>(cut) /
                            static_cast<double>(random_cut);
  state.SetItemsProcessed(state.iterations() * graph.num_adjacencies());
}
BENCHMARK(BM_MultilevelPartition)
    ->Args({1 << 13, 8})
    ->Args({1 << 15, 8})
    ->Args({1 << 15, 16})
    ->Unit(benchmark::kMillisecond);

void BM_Coarsening(benchmark::State& state) {
  CsrGraph graph = CommunityGraph(state.range(0), 13);
  for (auto _ : state) {
    Rng rng(14);
    auto hierarchy = CoarsenToSize(graph, 512, rng);
    benchmark::DoNotOptimize(hierarchy.size());
  }
}
BENCHMARK(BM_Coarsening)->Arg(1 << 13)->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

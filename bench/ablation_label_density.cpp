// Ablation: the paper's closing conjecture — "MPC can be further
// extended to property graphs, but its superiority ... may not be as
// high", because property graphs have FEW edge labels, each covering
// many edges. We sweep the number of properties over a fixed community
// graph: with few labels every label's induced subgraph is a giant WCC
// (nothing can be internal); with many labels MPC localizes almost
// everything.

#include "bench_util.h"

#include "common/random.h"

namespace {

mpc::rdf::RdfGraph CommunityGraph(size_t vertices, size_t edges,
                                  size_t properties, uint64_t seed) {
  mpc::Rng rng(seed);
  mpc::rdf::GraphBuilder builder;
  const size_t community = 40;
  for (size_t i = 0; i < edges; ++i) {
    uint64_t u = rng.Below(vertices);
    uint64_t v;
    if (rng.Chance(0.98)) {
      uint64_t base = (u / community) * community;
      v = base + rng.Below(std::min<uint64_t>(community, vertices - base));
    } else {
      v = rng.Below(vertices);
    }
    builder.Add("<t:v" + std::to_string(u) + ">",
                "<t:p" + std::to_string(rng.Below(properties)) + ">",
                "<t:v" + std::to_string(v) + ">");
  }
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  mpc::bench::ObsScope obs(argc, argv);
  using namespace mpc;
  std::cout << "=== Ablation: MPC vs label density (property-graph "
               "conjecture) ===\n"
            << "fixed community graph (16k vertices, 48k edges, k=8); "
               "only the label count varies\n\n";
  bench::Cell("#labels", 9);
  bench::Cell("|Lin|", 8);
  bench::Cell("|Lcross|", 10);
  bench::Cell("internal-prop edges", 21);
  bench::Cell("MPC |Ec|", 12);
  bench::Cell("hash |Ec|", 12);
  std::cout << "\n";

  for (size_t labels : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    rdf::RdfGraph graph = CommunityGraph(16000, 48000, labels, 5);
    core::MpcOptions options;
    options.base.k = 8;
    options.base.epsilon = 0.1;
    options.strategy = core::SelectionStrategy::kGreedy;
    core::MpcPartitioner partitioner(options);
    core::MpcRunStats stats;
    partition::Partitioning mpc_part = partitioner.Partition(graph, &stats);

    uint64_t internal_edges = 0;
    for (size_t p = 0; p < graph.num_properties(); ++p) {
      if (stats.selection.internal[p]) {
        internal_edges +=
            graph.PropertyFrequency(static_cast<rdf::PropertyId>(p));
      }
    }
    partition::Partitioning hash_part =
        bench::RunStrategy("Subject_Hash", graph, nullptr);

    bench::Cell(FormatWithCommas(labels), 9);
    bench::Cell(FormatWithCommas(stats.selection.num_internal), 8);
    bench::Cell(FormatWithCommas(mpc_part.num_crossing_properties()), 10);
    bench::Cell(FormatDouble(100.0 * internal_edges / graph.num_edges(),
                             1) + "%",
                21);
    bench::Cell(FormatWithCommas(mpc_part.num_crossing_edges()), 12);
    bench::Cell(FormatWithCommas(hash_part.num_crossing_edges()), 12);
    std::cout << "\n";
  }
  std::cout << "\n(expected: with 2-8 labels nothing can be internal — "
               "every label spans the graph, the property-graph regime; "
               "from a few dozen labels up, MPC's internal share climbs "
               "toward 100% — the RDF regime the paper targets)\n";
  return 0;
}

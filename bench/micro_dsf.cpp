// Microbenchmark for the Section IV-D design choice: disjoint-set-forest
// based WCC tracking (with lazy trial merges) versus recomputing WCCs
// from scratch per candidate — the bottleneck of Algorithm 1 lines 3/8.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dsf/disjoint_set_forest.h"
#include "rdf/types.h"

namespace {

using mpc::Rng;
using mpc::dsf::DisjointSetForest;
using mpc::rdf::Triple;

std::vector<Triple> RandomEdges(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triple> edges;
  edges.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    edges.emplace_back(static_cast<uint32_t>(rng.Below(n)), 0,
                       static_cast<uint32_t>(rng.Below(n)));
  }
  return edges;
}

void BM_DsfBuild(benchmark::State& state) {
  const size_t n = state.range(0);
  auto edges = RandomEdges(n, n * 2, 7);
  for (auto _ : state) {
    DisjointSetForest forest(n);
    forest.AddEdges(edges);
    benchmark::DoNotOptimize(forest.max_component_size());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_DsfBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_TrialMerge(benchmark::State& state) {
  const size_t n = state.range(0);
  auto base_edges = RandomEdges(n, n, 7);
  auto candidate = RandomEdges(n, n / 16 + 1, 8);
  DisjointSetForest base(n);
  base.AddEdges(base_edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpc::dsf::TrialMergeMaxComponent(base, candidate));
  }
  state.SetItemsProcessed(state.iterations() * candidate.size());
}
BENCHMARK(BM_TrialMerge)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

// The naive alternative Section IV-D replaces: rebuild the forest from
// scratch for every candidate evaluation.
void BM_NaiveRecompute(benchmark::State& state) {
  const size_t n = state.range(0);
  auto base_edges = RandomEdges(n, n, 7);
  auto candidate = RandomEdges(n, n / 16 + 1, 8);
  for (auto _ : state) {
    DisjointSetForest forest(n);
    forest.AddEdges(base_edges);
    forest.AddEdges(candidate);
    benchmark::DoNotOptimize(forest.max_component_size());
  }
  state.SetItemsProcessed(state.iterations() *
                          (base_edges.size() + candidate.size()));
}
BENCHMARK(BM_NaiveRecompute)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_MaxWccOfEdges(benchmark::State& state) {
  auto edges = RandomEdges(1 << 16, state.range(0), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc::dsf::MaxWccOfEdges(edges));
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_MaxWccOfEdges)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();

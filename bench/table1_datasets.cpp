// Table I: statistics of the six evaluation datasets (repro scale).
// Columns mirror the paper: #Entities, #Triples, #Properties.

#include "bench_util.h"
#include "rdf/stats.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);

  std::cout << "=== Table I: Statistics of Datasets (repro scale " << scale
            << ") ===\n";
  bench::LeftCell("Dataset", 12);
  bench::Cell("#Entities", 14);
  bench::Cell("#Triples", 14);
  bench::Cell("#Properties", 14);
  std::cout << "\n";

  for (workload::DatasetId id : workload::AllDatasets()) {
    workload::GeneratedDataset d = workload::MakeDataset(id, scale);
    rdf::DatasetStats stats = rdf::ComputeStats(d.name, d.graph);
    bench::LeftCell(stats.name, 12);
    bench::Cell(FormatWithCommas(stats.num_entities), 14);
    bench::Cell(FormatWithCommas(stats.num_triples), 14);
    bench::Cell(FormatWithCommas(stats.num_properties), 14);
    std::cout << "\n";
  }
  return 0;
}

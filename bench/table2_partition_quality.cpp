// Table II: number of crossing properties |L_cross| and crossing edges
// |E^c| for the vertex-disjoint strategies (MPC / Subject_Hash / METIS)
// on all six datasets. VP is edge-disjoint and has neither, exactly as
// the paper excludes it from this table.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);

  std::cout << "=== Table II: Crossing Properties and Crossing Edges "
               "(k=8, eps=0.1, scale "
            << scale << ") ===\n";
  bench::LeftCell("Dataset", 10);
  for (const char* strategy : {"MPC", "Subject_Hash", "METIS"}) {
    bench::Cell(std::string(strategy) + " |Lc|", 16);
    bench::Cell("|Ec|", 14);
  }
  std::cout << "\n";

  for (workload::DatasetId id : workload::AllDatasets()) {
    workload::GeneratedDataset d = workload::MakeDataset(id, scale);
    bench::LeftCell(d.name, 10);
    for (const char* strategy : {"MPC", "Subject_Hash", "METIS"}) {
      partition::Partitioning p = bench::RunStrategy(strategy, d.graph);
      bench::Cell(FormatWithCommas(p.num_crossing_properties()), 16);
      bench::Cell(FormatWithCommas(p.num_crossing_edges()), 14);
    }
    std::cout << "\n";
  }
  std::cout << "(paper shape: MPC has by far the fewest crossing "
               "properties;\n METIS the fewest crossing edges; gaps widen "
               "on property-rich graphs)\n";
  return 0;
}

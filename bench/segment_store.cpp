// Out-of-core segment experiment: cold-start latency, resident footprint
// and query-mix latency of the mmap'ed SegmentStore backend against the
// in-memory TripleStore backend, on the LUBM mix.
//
//   ./segment_store [scale] [--trace-out=...] [--metrics-out=...]
//
// The two acceptance ratios are asserted (exit 1 when violated):
//   - segment cold start (open + TOC read) at least 5x faster than the
//     in-memory path's N-Triples re-parse + four-index build;
//   - per-site footprint (sum of MemoryUsage) at least 2x smaller.
// Query results are required to be bit-identical between the backends.

#include <filesystem>
#include <fstream>
#include <functional>

#include "bench_util.h"
#include "exec/query_api.h"
#include "partition/partition_io.h"
#include "rdf/ntriples.h"
#include "storage/segment_store.h"
#include "storage/segment_writer.h"
#include "store/triple_store.h"
#include "workload/lubm.h"

namespace mpc::bench {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = "/tmp/mpc_bench_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// VmRSS from /proc/self/status, in bytes (0 when unavailable).
size_t ResidentBytes() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      size_t kb = 0;
      in >> kb;
      return kb * 1024;
    }
    in.ignore(4096, '\n');
  }
  return 0;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(q * (v.size() - 1))];
}

int Run(int argc, char** argv) {
  const double scale = ScaleFromArgs(argc, argv);

  workload::LubmOptions lubm_options;
  lubm_options.num_universities =
      std::max<uint32_t>(2, static_cast<uint32_t>(40 * scale));
  workload::GeneratedDataset dataset = workload::MakeLubm(lubm_options);
  const rdf::RdfGraph& graph = dataset.graph;
  std::cout << "LUBM x" << scale << ": "
            << FormatWithCommas(graph.triples().size()) << " triples, k="
            << kSites << "\n\n";

  const std::string dir = TempDir("segment_store");
  const std::string graph_path = dir + "/graph.nt";
  if (!rdf::WriteNTriplesFile(graph, graph_path).ok()) {
    std::cerr << "cannot write " << graph_path << "\n";
    return 1;
  }
  partition::Partitioning partitioning =
      RunStrategy("Subject_Hash", graph);
  if (!partition::PartitionIo::Save(graph, partitioning, dir).ok()) {
    std::cerr << "cannot save partitioning\n";
    return 1;
  }
  Result<uint64_t> fingerprint = partition::PartitionIo::Fingerprint(dir);
  if (!fingerprint.ok()) {
    std::cerr << fingerprint.status().ToString() << "\n";
    return 1;
  }

  // --- pack -------------------------------------------------------------
  Timer pack_timer;
  uint64_t packed_bytes = 0;
  for (uint32_t i = 0; i < partitioning.k(); ++i) {
    const partition::Partition& p = partitioning.partition(i);
    std::vector<rdf::Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    storage::SegmentWriterOptions options;
    options.site = i;
    options.k = partitioning.k();
    options.num_properties = graph.num_properties();
    options.num_vertices = graph.num_vertices();
    options.partition_fingerprint = *fingerprint;
    storage::SegmentWriteStats stats;
    Status st = storage::WriteSegment(storage::SegmentPath(dir, i),
                                      std::move(triples), options, &stats);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    packed_bytes += stats.file_bytes;
  }
  const double pack_millis = pack_timer.ElapsedMillis();

  // --- cold start: what one site worker pays ----------------------------
  // Both paths are timed best-of-3: a single shot is dominated by page
  // cache and allocator warm-up jitter, which is not the effect under
  // measurement.
  constexpr int kColdRepeats = 3;

  // Memory backend: re-parse the N-Triples file and build the four-index
  // TripleStore for every site (exactly site_worker's memory path).
  double memory_cold_millis = 0.0;
  rdf::RdfGraph reparsed;
  exec::Cluster memory_cluster;
  for (int r = 0; r < kColdRepeats; ++r) {
    Timer timer;
    rdf::GraphBuilder builder;
    if (!rdf::NTriplesParser::ParseFile(graph_path, &builder, 1).ok()) {
      std::cerr << "re-parse failed\n";
      return 1;
    }
    reparsed = builder.Build();
    memory_cluster = exec::Cluster::Build(partitioning);
    const double millis = timer.ElapsedMillis();
    if (r == 0 || millis < memory_cold_millis) memory_cold_millis = millis;
  }

  const size_t rss_after_memory = ResidentBytes();

  // Segment backend: map the files, read headers and TOCs, verify.
  double segment_cold_millis = 0.0;
  Result<exec::Cluster> segment_cluster =
      Status::InvalidArgument("not yet opened");
  for (int r = 0; r < kColdRepeats; ++r) {
    Timer timer;
    segment_cluster = exec::Cluster::BuildFromSegments(partitioning, dir);
    const double millis = timer.ElapsedMillis();
    if (!segment_cluster.ok()) {
      std::cerr << segment_cluster.status().ToString() << "\n";
      return 1;
    }
    if (r == 0 || millis < segment_cold_millis) segment_cold_millis = millis;
  }

  const size_t memory_bytes = memory_cluster.MemoryUsage();
  const size_t segment_bytes = segment_cluster->MemoryUsage();

  std::cout << "pack:        " << FormatMillis(pack_millis) << " ms, "
            << FormatWithCommas(packed_bytes) << " B ("
            << FormatDouble(static_cast<double>(packed_bytes) /
                                static_cast<double>(graph.triples().size()),
                            2)
            << " B/triple)\n";
  std::cout << "cold start:  memory " << FormatMillis(memory_cold_millis)
            << " ms (parse + 4-index build), segment "
            << FormatMillis(segment_cold_millis) << " ms (mmap + TOC) -> "
            << FormatDouble(memory_cold_millis /
                                std::max(segment_cold_millis, 1e-3),
                            1)
            << "x\n";
  std::cout << "footprint:   memory " << FormatWithCommas(memory_bytes)
            << " B, segment " << FormatWithCommas(segment_bytes) << " B -> "
            << FormatDouble(static_cast<double>(memory_bytes) /
                                static_cast<double>(
                                    std::max<size_t>(segment_bytes, 1)),
                            1)
            << "x (VmRSS after memory build: "
            << FormatWithCommas(rss_after_memory) << " B)\n\n";

  // --- query mix: bit-identity + latency quantiles ----------------------
  exec::DistributedExecutor memory_exec(memory_cluster, graph, {});
  exec::DistributedExecutor segment_exec(*segment_cluster, graph, {});
  constexpr int kRepeats = 5;
  std::vector<double> memory_lat;
  std::vector<double> segment_lat;
  uint64_t rows = 0;
  for (const workload::NamedQuery& q : dataset.benchmark_queries) {
    for (int r = 0; r < kRepeats; ++r) {
      Timer tm;
      Result<exec::QueryResponse> a =
          memory_exec.Execute(exec::QueryRequest::FromText(q.sparql));
      memory_lat.push_back(tm.ElapsedMillis());
      Timer ts;
      Result<exec::QueryResponse> b =
          segment_exec.Execute(exec::QueryRequest::FromText(q.sparql));
      segment_lat.push_back(ts.ElapsedMillis());
      if (!a.ok() || !b.ok()) {
        std::cerr << q.name << ": execution failed\n";
        return 1;
      }
      if (a->bindings.rows != b->bindings.rows ||
          a->bindings.var_ids != b->bindings.var_ids) {
        std::cerr << q.name << ": backends disagree ("
                  << a->bindings.num_rows() << " vs "
                  << b->bindings.num_rows() << " rows)\n";
        return 1;
      }
      if (r == 0) rows += a->bindings.num_rows();
    }
  }
  std::cout << "query mix:   " << dataset.benchmark_queries.size()
            << " queries x " << kRepeats << ", " << FormatWithCommas(rows)
            << " rows, bit-identical\n";
  std::cout << "  memory:    p50 " << FormatDouble(Quantile(memory_lat, 0.5), 2)
            << " ms, p95 " << FormatDouble(Quantile(memory_lat, 0.95), 2)
            << " ms\n";
  std::cout << "  segment:   p50 "
            << FormatDouble(Quantile(segment_lat, 0.5), 2) << " ms, p95 "
            << FormatDouble(Quantile(segment_lat, 0.95), 2) << " ms\n\n";

  // --- FunctionRef vs std::function on the Scan hot path ----------------
  // The satellite claim: handing Scan a capturing lambda no longer
  // allocates. Measure a tight per-triple callback through both.
  {
    const store::TripleStore& site0 = *dynamic_cast<const store::TripleStore*>(
        &memory_cluster.site(0));
    uint64_t sink = 0;
    constexpr int kScanRepeats = 20;
    Timer fr_timer;
    for (int r = 0; r < kScanRepeats; ++r) {
      site0.Scan(rdf::kInvalidVertex, rdf::kInvalidProperty,
                 rdf::kInvalidVertex, [&](const rdf::Triple& t) {
                   sink += t.object;
                   return true;
                 });
    }
    const double fr_millis = fr_timer.ElapsedMillis();
    Timer fn_timer;
    for (int r = 0; r < kScanRepeats; ++r) {
      // The pre-refactor shape: a std::function materialized per call.
      std::function<bool(const rdf::Triple&)> fn =
          [&](const rdf::Triple& t) {
            sink += t.object;
            return true;
          };
      site0.Scan(rdf::kInvalidVertex, rdf::kInvalidProperty,
                 rdf::kInvalidVertex, fn);
    }
    const double fn_millis = fn_timer.ElapsedMillis();
    std::cout << "scan sweep:  FunctionRef " << FormatMillis(fr_millis)
              << " ms, via std::function " << FormatMillis(fn_millis)
              << " ms (x" << kScanRepeats << " full-site sweeps, checksum "
              << sink % 1000 << ")\n\n";
  }

  (void)reparsed;
  int failures = 0;
  const double cold_ratio =
      memory_cold_millis / std::max(segment_cold_millis, 1e-3);
  if (cold_ratio < 5.0) {
    std::cerr << "FAIL: segment cold start only " << FormatDouble(cold_ratio, 2)
              << "x faster (need >= 5x)\n";
    ++failures;
  }
  const double mem_ratio = static_cast<double>(memory_bytes) /
                           static_cast<double>(std::max<size_t>(segment_bytes, 1));
  if (mem_ratio < 2.0) {
    std::cerr << "FAIL: segment footprint only " << FormatDouble(mem_ratio, 2)
              << "x smaller (need >= 2x)\n";
    ++failures;
  }
  if (failures == 0) {
    std::cout << "acceptance:  cold start " << FormatDouble(cold_ratio, 1)
              << "x (>=5x), footprint " << FormatDouble(mem_ratio, 1)
              << "x (>=2x) -- ok\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mpc::bench

int main(int argc, char** argv) {
  mpc::bench::ObsScope obs(argc, argv);
  return mpc::bench::Run(argc, argv);
}

// Streaming-ingest experiment for the dynamic maintenance subsystem
// (src/dynamic/): a LUBM seed graph is MPC-partitioned once, then a
// deterministic insert/delete stream runs through IncrementalMaintainer.
// At checkpoints the maintained partitioning is compared against an
// oracle — a full MPC repartition of the exact live graph — on the two
// quantities the paper optimizes: |L_cross| and the IEQ share of the 14
// LUBM benchmark queries. Tombstone and replication ratios show the
// price of lazy deletion between repartitions.
//
// Usage: ./dynamic_updates [scale]   (scale 1.0 ~ 20 universities)

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "dynamic/incremental_maintainer.h"
#include "workload/lubm.h"

namespace mpc {
namespace {

using dynamic::IncrementalMaintainer;
using dynamic::TripleUpdate;
using dynamic::UpdateBatch;
using dynamic::UpdateKind;

/// Deterministic LUBM-flavoured update stream. Inserts either attach a
/// brand-new entity through an existing property (a fresh student/course
/// mirroring a random seed triple's shape) or add an edge between
/// existing entities; deletes tombstone random seed triples.
std::vector<UpdateBatch> MakeStream(Rng& rng, const rdf::RdfGraph& seed,
                                    size_t num_batches,
                                    size_t updates_per_batch) {
  std::vector<UpdateBatch> batches;
  size_t fresh = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch;
    for (size_t i = 0; i < updates_per_batch; ++i) {
      const rdf::Triple& t = seed.triples()[rng.Below(seed.num_edges())];
      TripleUpdate u;
      const uint64_t roll = rng.Below(10);
      if (roll < 4) {
        // New entity, attached the way the sampled seed triple attaches
        // its subject (same property, same object side).
        u.kind = UpdateKind::kInsert;
        u.subject = "<http://example.org/lubm/fresh" +
                    std::to_string(fresh++) + ">";
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(t.object);
      } else if (roll < 7) {
        // New edge between existing entities: the sampled triple's
        // property, re-targeted at another triple's object.
        const rdf::Triple& other =
            seed.triples()[rng.Below(seed.num_edges())];
        u.kind = UpdateKind::kInsert;
        u.subject = seed.VertexName(t.subject);
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(other.object);
      } else {
        u.kind = UpdateKind::kDelete;
        u.subject = seed.VertexName(t.subject);
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(t.object);
      }
      batch.updates.push_back(std::move(u));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::string Pct(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

void RunPolicy(const std::string& label,
               const dynamic::RepartitionPolicy& policy,
               const workload::GeneratedDataset& dataset,
               const partition::Partitioning& seed_partitioning,
               const std::vector<UpdateBatch>& stream,
               size_t checkpoint_every) {
  dynamic::MaintainerOptions options;
  options.policy = policy;
  options.mpc.base.k = bench::kSites;
  options.mpc.base.epsilon = bench::kEpsilon;
  options.num_threads = 0;
  IncrementalMaintainer maintainer(dataset.graph.Clone(),
                                   seed_partitioning, options);

  std::cout << "policy=" << label << "  seed |L_cross|="
            << seed_partitioning.num_crossing_properties() << "\n";
  bench::LeftCell("batch", 7);
  bench::Cell("live", 9);
  bench::Cell("|Lx|", 6);
  bench::Cell("|Lx|*", 7);
  bench::Cell("IEQ%", 7);
  bench::Cell("IEQ%*", 7);
  bench::Cell("tomb%", 7);
  bench::Cell("repl", 7);
  bench::Cell("repart", 8);
  std::cout << "\n";

  Timer timer;
  for (size_t b = 0; b < stream.size(); ++b) {
    dynamic::ApplyResult r = maintainer.ApplyBatch(stream[b]);
    const bool last = b + 1 == stream.size();
    if ((b + 1) % checkpoint_every != 0 && !last) continue;

    // Oracle: full MPC repartition of the exact live graph.
    rdf::RdfGraph live = maintainer.MaterializeGraph();
    core::MpcOptions oracle_options = options.mpc;
    oracle_options.base.num_threads = 0;
    partition::Partitioning oracle =
        core::MpcPartitioner(oracle_options).Partition(live);

    partition::Partitioning maintained = maintainer.CompactPartitioning();
    const double ieq = bench::IeqPercent(dataset.benchmark_queries,
                                         maintained, maintainer.graph());
    const double ieq_oracle =
        bench::IeqPercent(dataset.benchmark_queries, oracle, live);

    bench::LeftCell(std::to_string(b + 1), 7);
    bench::Cell(std::to_string(r.drift.live_triples), 9);
    bench::Cell(std::to_string(r.drift.crossing_properties), 6);
    bench::Cell(std::to_string(oracle.num_crossing_properties()), 7);
    bench::Cell(Pct(ieq), 7);
    bench::Cell(Pct(ieq_oracle), 7);
    bench::Cell(Pct(100.0 * r.drift.tombstone_ratio), 7);
    bench::Cell(Pct(r.drift.replication_ratio), 7);
    bench::Cell(std::to_string(r.drift.repartitions) +
                    (r.repartition_triggered ? "!" : ""),
                8);
    std::cout << "\n";
  }
  std::cout << "stream time: " << Pct(timer.ElapsedMillis()) << " ms ("
            << maintainer.repartition_count() << " repartitions)\n\n";
}

/// Crash-recovery experiment: the same stream runs journaled (write-
/// ahead journal + periodic checkpoints), then the process state is
/// dropped and OpenDurable recovers it — checkpoint load plus journal-
/// tail replay. The acceptance bar is recovery well under a from-scratch
/// MPC repartition of the live graph (<25%).
void RunRecovery(const workload::GeneratedDataset& dataset,
                 const partition::Partitioning& seed_partitioning,
                 const std::vector<UpdateBatch>& stream) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "mpc_dynamic_updates_journal").string();
  fs::remove_all(dir);

  dynamic::MaintainerOptions options;
  options.policy.kind = dynamic::RepartitionPolicy::Kind::kThreshold;
  options.mpc.base.k = bench::kSites;
  options.mpc.base.epsilon = bench::kEpsilon;
  options.num_threads = 0;
  options.journal_dir = dir;
  // An off-cycle cadence, so the stream ends with a journal tail past
  // the last checkpoint and recovery has real replay work to do.
  options.checkpoint_every_batches = 5;
  const uint64_t fp = 0xbe7c0ffe;

  // From-scratch baseline: a crash WITHOUT the journal loses the
  // maintainer state, and rebuilding it means re-running the whole
  // stream (every batch, every triggered repartition) from the seed.
  Timer plain_timer;
  {
    dynamic::MaintainerOptions plain = options;
    plain.journal_dir.clear();
    IncrementalMaintainer m(dataset.graph.Clone(), seed_partitioning,
                            plain);
    for (const UpdateBatch& b : stream) m.ApplyBatch(b);
    m.WaitForRepartition();
  }
  const double plain_ms = plain_timer.ElapsedMillis();

  Timer journaled_timer;
  {
    Result<std::unique_ptr<IncrementalMaintainer>> m =
        dynamic::IncrementalMaintainer::OpenDurable(
            dataset.graph.Clone(), seed_partitioning, options, fp);
    if (!m.ok()) {
      std::cout << "journaled run failed: " << m.status().ToString()
                << "\n";
      return;
    }
    for (const UpdateBatch& b : stream) (*m)->ApplyBatch(b);
    (*m)->WaitForRepartition();
  }  // process "crashes": only the journal directory survives
  const double journaled_ms = journaled_timer.ElapsedMillis();

  Timer recover_timer;
  Result<std::unique_ptr<IncrementalMaintainer>> recovered =
      dynamic::IncrementalMaintainer::OpenDurable(
          dataset.graph.Clone(), seed_partitioning, options, fp);
  const double recover_ms = recover_timer.ElapsedMillis();
  if (!recovered.ok()) {
    std::cout << "recovery failed: " << recovered.status().ToString()
              << "\n";
    return;
  }

  // Reference point: one bare MPC run over the live graph — cheaper
  // than the full rebuild but does NOT restore maintainer state (drift
  // counters, tombstones, the exact placement of streamed inserts).
  rdf::RdfGraph live = (*recovered)->MaterializeGraph();
  Timer scratch_timer;
  core::MpcOptions scratch_options = options.mpc;
  scratch_options.base.num_threads = 0;
  partition::Partitioning scratch =
      core::MpcPartitioner(scratch_options).Partition(live);
  const double scratch_ms = scratch_timer.ElapsedMillis();

  std::cout << "crash recovery (journal + checkpoints in " << dir
            << "):\n"
            << "  journaled stream:         " << Pct(journaled_ms)
            << " ms (" << (*recovered)->batches_applied() << " batches, "
            << (*recovered)->repartition_count()
            << " repartitions; +"
            << Pct(100.0 * (journaled_ms - plain_ms) / plain_ms)
            << "% journal overhead)\n"
            << "  recovery (ckpt+replay):   " << Pct(recover_ms) << " ms\n"
            << "  from-scratch rebuild:     " << Pct(plain_ms)
            << " ms (re-run the stream from the seed)\n"
            << "  one bare MPC repartition: " << Pct(scratch_ms)
            << " ms (live graph, |L_cross| "
            << scratch.num_crossing_properties()
            << "; loses maintainer state)\n"
            << "  recovery / from-scratch:  "
            << Pct(100.0 * recover_ms / plain_ms) << "% (target <25%)\n\n";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mpc

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);

  workload::LubmOptions lubm;
  lubm.num_universities =
      std::max<uint32_t>(2, static_cast<uint32_t>(20 * scale));
  workload::GeneratedDataset dataset = workload::MakeLubm(lubm);
  std::cout << "LUBM x" << lubm.num_universities << ": "
            << dataset.graph.num_edges() << " triples, "
            << dataset.graph.num_vertices() << " vertices, "
            << dataset.graph.num_properties() << " properties\n";

  core::MpcOptions mpc;
  mpc.base.k = bench::kSites;
  mpc.base.epsilon = bench::kEpsilon;
  mpc.base.num_threads = 0;
  partition::Partitioning seed =
      core::MpcPartitioner(mpc).Partition(dataset.graph);

  // ~30% of the seed's size flows through the stream.
  const size_t num_batches = 12;
  const size_t per_batch =
      std::max<size_t>(10, dataset.graph.num_edges() * 3 / 10 / num_batches);
  std::cout << "stream: " << num_batches << " batches x " << per_batch
            << " updates (40% new-entity inserts, 30% new edges, "
               "30% deletes)\n";
  std::cout << "columns: |Lx|/IEQ% maintained, |Lx|*/IEQ%* oracle full "
               "repartition of the live graph\n\n";

  Rng rng(7);
  std::vector<UpdateBatch> stream =
      MakeStream(rng, dataset.graph, num_batches, per_batch);

  dynamic::RepartitionPolicy threshold;
  threshold.kind = dynamic::RepartitionPolicy::Kind::kThreshold;
  RunPolicy("threshold", threshold, dataset, seed, stream, 2);

  dynamic::RepartitionPolicy never;
  never.kind = dynamic::RepartitionPolicy::Kind::kNever;
  RunPolicy("never", never, dataset, seed, stream, 2);

  RunRecovery(dataset, seed, stream);

  return 0;
}

// Table VII: the approximate greedy algorithm (Algorithm 1) vs the exact
// optimum (MPC-Exact) on LUBM — crossing properties, crossing edges and
// partitioning time. LUBM has 18 properties, the only dataset where the
// exact branch-and-bound is tractable, exactly as in the paper.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);
  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kLubm, scale);

  std::cout << "=== Table VII: Greedy vs Exact Internal Property "
               "Selection on LUBM (k=8, scale "
            << scale << ") ===\n";
  bench::LeftCell("Variant", 12);
  bench::Cell("|Lcross|", 10);
  bench::Cell("|Ec|", 14);
  bench::Cell("|Lin|", 8);
  bench::Cell("Partitioning(ms)", 18);
  bench::Cell("optimal?", 10);
  std::cout << "\n";

  for (const std::string& variant : {std::string("MPC"),
                                     std::string("MPC-Exact")}) {
    core::MpcOptions options;
    options.base.k = bench::kSites;
    options.base.epsilon = bench::kEpsilon;
    options.strategy = (variant == "MPC-Exact")
                           ? core::SelectionStrategy::kExact
                           : core::SelectionStrategy::kGreedy;
    core::MpcPartitioner partitioner(options);
    core::MpcRunStats stats;
    partition::Partitioning p = partitioner.Partition(d.graph, &stats);
    double millis = stats.total_millis;

    bench::LeftCell(variant, 12);
    bench::Cell(FormatWithCommas(p.num_crossing_properties()), 10);
    bench::Cell(FormatWithCommas(p.num_crossing_edges()), 14);
    bench::Cell(FormatWithCommas(stats.selection.num_internal), 8);
    bench::Cell(FormatMillis(millis), 18);
    bench::Cell(variant == "MPC-Exact"
                    ? (stats.selection.optimal ? "yes" : "budget-capped")
                    : "heuristic",
                10);
    std::cout << "\n";
  }
  std::cout << "(paper shape: greedy within one crossing property of the "
               "optimum at a fraction of the search cost)\n";
  return 0;
}

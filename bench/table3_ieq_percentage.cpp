// Table III: percentage of independently executable queries (IEQs) per
// partitioning. Benchmark queries for LUBM/YAGO2/Bio2RDF; 1000-query
// logs for WatDiv/DBpedia/LGD. Subject_Hash / METIS columns count star
// queries only (their native guarantee); the "+" columns extend them
// with the crossing-property classifier, as the paper does.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);
  const size_t log_size = argc > 2 ? std::atoi(argv[2]) : 1000;

  std::cout << "=== Table III: Percentage of IEQs (k=8, scale " << scale
            << ", logs of " << log_size << ") ===\n";
  bench::LeftCell("Dataset", 10);
  for (const char* column : {"MPC", "VP", "Subj_Hash/METIS",
                             "Subject_Hash+", "METIS+"}) {
    bench::Cell(column, 17);
  }
  std::cout << "\n";

  for (workload::DatasetId id : workload::AllDatasets()) {
    workload::GeneratedDataset d = workload::MakeDataset(id, scale);
    std::vector<workload::NamedQuery> queries = d.benchmark_queries;
    if (queries.empty()) {
      queries = workload::MakeQueryLog(id, d.graph, log_size);
    }

    partition::Partitioning mpc = bench::RunStrategy("MPC", d.graph, nullptr);
    partition::Partitioning vp = bench::RunStrategy("VP", d.graph, nullptr);
    partition::Partitioning hash =
        bench::RunStrategy("Subject_Hash", d.graph, nullptr);
    partition::Partitioning metis =
        bench::RunStrategy("METIS", d.graph, nullptr);

    auto pct = [](double v) { return FormatDouble(v, 2) + "%"; };
    bench::LeftCell(d.name, 10);
    bench::Cell(pct(bench::IeqPercent(queries, mpc, d.graph)), 17);
    bench::Cell(pct(bench::IeqPercent(queries, vp, d.graph)), 17);
    // Plain Subject_Hash and METIS guarantee independence for stars only
    // (identical percentages, printed once as in the paper).
    bench::Cell(pct(bench::IeqPercent(queries, hash, d.graph,
                                      /*stars_only=*/true)),
                17);
    bench::Cell(pct(bench::IeqPercent(queries, hash, d.graph)), 17);
    bench::Cell(pct(bench::IeqPercent(queries, metis, d.graph)), 17);
    std::cout << "\n";
  }
  std::cout << "(paper shape: MPC highest everywhere; VP lowest; '+' "
               "variants only marginally above star-only)\n";
  return 0;
}

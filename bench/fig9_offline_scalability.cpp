// Fig. 9: offline scalability — MPC partitioning + loading time on LUBM
// and WatDiv as the graph grows (the paper sweeps 100M -> 10B triples;
// we sweep two decades of the repro scale).

#include "bench_util.h"

namespace {

void RunDataset(mpc::workload::DatasetId id,
                const std::vector<double>& scales) {
  using namespace mpc;
  std::cout << "--- " << workload::DatasetName(id) << " ---\n";
  bench::Cell("#triples", 14);
  bench::Cell("partition(ms)", 15);
  bench::Cell("loading(ms)", 13);
  bench::Cell("total(ms)", 12);
  std::cout << "\n";
  for (double scale : scales) {
    workload::GeneratedDataset d = workload::MakeDataset(id, scale);
    partition::RunStats stats;
    partition::Partitioning p = bench::RunStrategy("MPC", d.graph, &stats);
    const double partition_millis = stats.total_millis;
    exec::Cluster cluster = exec::Cluster::Build(std::move(p));
    bench::Cell(FormatWithCommas(d.graph.num_edges()), 14);
    bench::Cell(FormatMillis(partition_millis), 15);
    bench::Cell(FormatMillis(cluster.loading_millis()), 13);
    bench::Cell(FormatMillis(partition_millis + cluster.loading_millis()),
                12);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double base = mpc::bench::ScaleFromArgs(argc, argv, 0.25);
  mpc::bench::ObsScope obs(argc, argv);
  std::vector<double> scales = {base, base * 2, base * 4, base * 8,
                                base * 16};
  std::cout << "=== Fig. 9: Scalability of Offline Performance (MPC, "
               "k=8) ===\n";
  RunDataset(mpc::workload::DatasetId::kLubm, scales);
  RunDataset(mpc::workload::DatasetId::kWatdiv, scales);
  std::cout << "(paper shape: offline time grows roughly linearly — "
               "slowly relative to graph size)\n";
  return 0;
}

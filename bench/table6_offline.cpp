// Table VI: offline cost — partitioning time and per-site loading
// (index-build) time for every strategy on every dataset.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);

  std::cout << "=== Table VI: Partitioning and Loading Time (ms, k=8, "
               "scale "
            << scale << ") ===\n";
  bench::LeftCell("Dataset", 10);
  bench::LeftCell("Strategy", 14);
  bench::Cell("Partitioning", 14);
  bench::Cell("Loading", 12);
  bench::Cell("Total", 12);
  bench::Cell("Repl.ratio", 12);
  std::cout << "\n";

  for (workload::DatasetId id : workload::AllDatasets()) {
    workload::GeneratedDataset d = workload::MakeDataset(id, scale);
    for (const std::string& strategy :
         {std::string("MPC"), std::string("Subject_Hash"), std::string("VP"),
          std::string("METIS")}) {
      double partition_millis = 0;
      partition::Partitioning p =
          bench::RunStrategy(strategy, d.graph, &partition_millis);
      double replication = p.ReplicationRatio(d.graph);
      exec::Cluster cluster = exec::Cluster::Build(std::move(p));
      bench::LeftCell(d.name, 10);
      bench::LeftCell(strategy, 14);
      bench::Cell(FormatMillis(partition_millis), 14);
      bench::Cell(FormatMillis(cluster.loading_millis()), 12);
      bench::Cell(FormatMillis(partition_millis + cluster.loading_millis()),
                  12);
      bench::Cell(FormatDouble(replication, 3), 12);
      std::cout << "\n";
    }
  }
  std::cout << "(paper shape: hash strategies partition fastest; MPC's "
               "extra partitioning cost is modest and loading is "
               "comparable since it balances partition sizes)\n";
  return 0;
}

// Table VI: offline cost — partitioning time and per-site loading
// (index-build) time for every strategy on every dataset, with the
// per-stage breakdown every Partitioner now reports through the unified
// RunStats. A second pass re-runs the pipeline at 8 threads so the
// speedup of the parallel substrate is visible next to the serial cost.

#include "bench_util.h"

namespace {

/// "selection 12.3 + metis 4.5 + ..." from the RunStats stage list.
std::string StageBreakdown(const mpc::partition::RunStats& stats) {
  std::string out;
  for (const mpc::partition::RunStats::Stage& stage : stats.stages) {
    if (!out.empty()) out += " + ";
    out += stage.name + " " + mpc::FormatMillis(stage.millis);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);

  std::cout << "=== Table VI: Partitioning and Loading Time (ms, k=8, "
               "scale "
            << scale << ") ===\n";
  bench::LeftCell("Dataset", 10);
  bench::LeftCell("Strategy", 14);
  bench::Cell("Part(1T)", 10);
  bench::Cell("Load(1T)", 10);
  bench::Cell("Part(8T)", 10);
  bench::Cell("Load(8T)", 10);
  bench::Cell("Speedup", 9);
  bench::Cell("Repl.ratio", 12);
  std::cout << "  stages (1T)\n";

  for (workload::DatasetId id : workload::AllDatasets()) {
    workload::GeneratedDataset d = workload::MakeDataset(id, scale);
    for (const std::string& strategy :
         {std::string("MPC"), std::string("Subject_Hash"), std::string("VP"),
          std::string("METIS")}) {
      // Serial baseline: partition + load at 1 thread.
      partition::RunStats serial_stats;
      partition::Partitioning p = bench::RunStrategy(
          strategy, d.graph, &serial_stats, /*seed=*/1, /*num_threads=*/1);
      const double replication = p.ReplicationRatio(d.graph);
      exec::Cluster serial_cluster =
          exec::Cluster::Build(std::move(p), /*num_threads=*/1);
      const double serial_total =
          serial_stats.total_millis + serial_cluster.loading_millis();

      // Parallel pass: same pipeline at 8 threads. The result is
      // bit-identical; only the wall clock changes.
      partition::RunStats par_stats;
      partition::Partitioning p8 = bench::RunStrategy(
          strategy, d.graph, &par_stats, /*seed=*/1, /*num_threads=*/8);
      exec::Cluster par_cluster =
          exec::Cluster::Build(std::move(p8), /*num_threads=*/8);
      const double par_total =
          par_stats.total_millis + par_cluster.loading_millis();

      bench::LeftCell(d.name, 10);
      bench::LeftCell(strategy, 14);
      bench::Cell(FormatMillis(serial_stats.total_millis), 10);
      bench::Cell(FormatMillis(serial_cluster.loading_millis()), 10);
      bench::Cell(FormatMillis(par_stats.total_millis), 10);
      bench::Cell(FormatMillis(par_cluster.loading_millis()), 10);
      bench::Cell(par_total > 0
                      ? FormatDouble(serial_total / par_total, 2) + "x"
                      : "-",
                  9);
      bench::Cell(FormatDouble(replication, 3), 12);
      std::cout << "  " << StageBreakdown(serial_stats) << "\n";
    }
  }
  std::cout << "(paper shape: hash strategies partition fastest; MPC's "
               "extra partitioning cost is modest and loading is "
               "comparable since it balances partition sizes. The 8T "
               "columns show the parallel substrate: selection and "
               "loading scale with cores, speedup approaches the "
               "machine's core count on large datasets)\n";
  return 0;
}

// Serving experiment: the QueryService front-end under concurrent load
// on a live LUBM partitioning (src/serve/).
//
// Phase 1 (static snapshot): replays the 14 LUBM benchmark queries at
// concurrency 16 with the result cache disabled, so every repeat walks
// the plan cache — asserts plan-cache hits > 0 and reports throughput
// plus p50/p95/p99 from the serve.latency_ms histogram.
//
// Phase 2 (concurrent update stream): the same replay runs while a side
// thread streams deterministic insert/delete batches through an
// IncrementalMaintainer, capturing and Publishing a fresh ServingState
// after each batch. Before each Publish the thread records an oracle —
// a direct single-threaded execution of every query on that exact
// snapshot — keyed by generation. Afterwards every served answer is
// checked bit-for-bit against the oracle for the generation it reports:
// a mismatch would mean a query observed a half-applied batch or a
// stale cache entry. Also asserts result-cache hits > 0 (repeats
// between generation bumps must hit).
//
// Usage: ./serving [scale]   (scale 1.0 ~ 20 universities)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "dynamic/incremental_maintainer.h"
#include "obs/trace.h"
#include "serve/query_service.h"
#include "serve/serving_state.h"

namespace mpc {
namespace {

constexpr int kConcurrency = 16;

using SortedRows = std::vector<std::vector<uint32_t>>;

SortedRows Sorted(const store::BindingTable& table) {
  SortedRows rows = table.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Deterministic LUBM-flavoured update stream (same shape as the
/// dynamic_updates bench): inserts attach fresh entities or new edges
/// between existing ones, deletes tombstone sampled seed triples.
std::vector<dynamic::UpdateBatch> MakeStream(Rng& rng,
                                             const rdf::RdfGraph& seed,
                                             size_t num_batches,
                                             size_t updates_per_batch) {
  std::vector<dynamic::UpdateBatch> batches;
  size_t fresh = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    dynamic::UpdateBatch batch;
    for (size_t i = 0; i < updates_per_batch; ++i) {
      const rdf::Triple& t = seed.triples()[rng.Below(seed.num_edges())];
      dynamic::TripleUpdate u;
      const uint64_t roll = rng.Below(10);
      if (roll < 4) {
        u.kind = dynamic::UpdateKind::kInsert;
        u.subject = "<http://example.org/lubm/fresh" +
                    std::to_string(fresh++) + ">";
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(t.object);
      } else if (roll < 7) {
        const rdf::Triple& other =
            seed.triples()[rng.Below(seed.num_edges())];
        u.kind = dynamic::UpdateKind::kInsert;
        u.subject = seed.VertexName(t.subject);
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(other.object);
      } else {
        u.kind = dynamic::UpdateKind::kDelete;
        u.subject = seed.VertexName(t.subject);
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(t.object);
      }
      batch.updates.push_back(std::move(u));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct ReplayResult {
  size_t submitted = 0;
  size_t ok = 0;
  size_t failed = 0;
  size_t result_cache_hits = 0;
  size_t plan_cache_hits = 0;
  double wall_ms = 0.0;
  /// (query index, response) for every successful answer.
  std::vector<std::pair<size_t, exec::QueryResponse>> answers;
};

/// Submits `repeats` rounds of the query texts into the service from
/// this thread and collects every future. `pace_ms` sleeps between
/// rounds, stretching the replay window so a concurrent update stream
/// gets to publish mid-replay.
ReplayResult Replay(serve::QueryService& service,
                    const std::vector<std::string>& texts, size_t repeats,
                    double pace_ms = 0.0) {
  ReplayResult r;
  std::vector<std::pair<size_t, std::future<Result<exec::QueryResponse>>>>
      futures;
  futures.reserve(repeats * texts.size());
  Timer timer;
  for (size_t round = 0; round < repeats; ++round) {
    for (size_t qi = 0; qi < texts.size(); ++qi) {
      futures.emplace_back(
          qi, service.Submit(exec::QueryRequest::FromText(texts[qi])));
      ++r.submitted;
    }
    if (pace_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(pace_ms));
    }
  }
  for (auto& [qi, future] : futures) {
    Result<exec::QueryResponse> response = future.get();
    if (!response.ok()) {
      if (r.failed == 0) {
        std::cerr << "query failed: " << response.status().ToString()
                  << "\n";
      }
      ++r.failed;
      continue;
    }
    ++r.ok;
    r.result_cache_hits += response->stats.result_cache_hit ? 1 : 0;
    r.plan_cache_hits += response->stats.plan_cache_hit ? 1 : 0;
    r.answers.emplace_back(qi, std::move(*response));
  }
  r.wall_ms = timer.ElapsedMillis();
  return r;
}

void PrintLatency() {
  auto& latency = obs::MetricsRegistry::Default().HistogramRef(
      "serve.latency_ms", obs::DefaultLatencyBoundsMs());
  std::cout << "  latency p50 " << FormatDouble(latency.Quantile(0.5), 2)
            << " ms, p95 " << FormatDouble(latency.Quantile(0.95), 2)
            << " ms, p99 " << FormatDouble(latency.Quantile(0.99), 2)
            << " ms\n";
}

}  // namespace
}  // namespace mpc

int main(int argc, char** argv) {
  using namespace mpc;
  const double scale = bench::ScaleFromArgs(argc, argv, 0.5);
  bench::ObsScope obs_scope(argc, argv);

  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kLubm, scale);
  partition::Partitioning seed_partitioning =
      bench::RunStrategy("MPC", d.graph);
  std::vector<std::string> texts;
  for (const workload::NamedQuery& q : d.benchmark_queries) {
    texts.push_back(q.sparql);
  }

  std::cout << "=== Serving: QueryService at concurrency " << kConcurrency
            << " (LUBM scale " << scale << ", "
            << FormatWithCommas(d.graph.num_edges()) << " triples, "
            << texts.size() << " queries) ===\n";

  serve::ServingStateOptions state_options;  // executors stay serial

  // --- Phase 1: static snapshot, result cache off -> plan cache only.
  {
    serve::QueryServiceOptions options;
    options.num_workers = kConcurrency;
    options.queue_capacity = 0;  // unbounded: closed-loop replay
    options.result_cache_capacity = 0;
    serve::QueryService service(
        serve::ServingState::Build(d.graph.Clone(), seed_partitioning,
                                   /*generation=*/0, state_options),
        options);
    ReplayResult r = Replay(service, texts, /*repeats=*/30);
    service.Shutdown();
    std::cout << "static:  " << r.ok << "/" << r.submitted << " ok, "
              << FormatDouble(1000.0 * static_cast<double>(r.ok) / r.wall_ms,
                              0)
              << " qps, " << r.plan_cache_hits << " plan-cache hits\n";
    PrintLatency();
    if (r.failed != 0 || r.ok != r.submitted) {
      std::cerr << "FAIL: " << r.failed << " queries failed\n";
      return 1;
    }
    if (r.plan_cache_hits == 0) {
      std::cerr << "FAIL: repeated replay produced no plan-cache hits\n";
      return 1;
    }
  }

  // --- Phase 1b: disabled-tracing overhead. With tracing off, every
  // instrumentation point in the serving path costs one relaxed atomic
  // load. Price that load directly, count the spans a query actually
  // opens, and bound the product against the p50 latency just measured:
  // the always-on instrumentation must stay under 0.7% of serving time.
  if (obs::TracingEnabled()) {
    std::cout << "tracing: overhead check skipped (tracing is enabled)\n";
  } else {
    constexpr size_t kSpins = 2000000;
    Timer span_timer;
    for (size_t i = 0; i < kSpins; ++i) {
      obs::TraceSpan span("bench.disabled");
    }
    const double ns_per_span =
        span_timer.ElapsedMillis() * 1e6 / static_cast<double>(kSpins);

    // Spans per query measured, not guessed: trace one direct pass over
    // the mix (+1 for the serve.query wrapper the service adds).
    std::shared_ptr<const serve::ServingState> probe =
        serve::ServingState::Build(d.graph.Clone(), seed_partitioning,
                                   /*generation=*/0, state_options);
    obs::StartTracing();
    for (const std::string& text : texts) {
      (void)probe->distributed().Execute(exec::QueryRequest::FromText(text));
    }
    const double spans_per_query =
        static_cast<double>(obs::CollectTrace().size()) /
            static_cast<double>(texts.size()) +
        1.0;
    obs::StopTracing();

    const double p50_ms = obs::MetricsRegistry::Default()
                              .HistogramRef("serve.latency_ms",
                                            obs::DefaultLatencyBoundsMs())
                              .Quantile(0.5);
    const double overhead_pct =
        p50_ms > 0.0
            ? 100.0 * (ns_per_span * spans_per_query) / (p50_ms * 1e6)
            : 0.0;
    std::cout << "tracing: disabled span " << FormatDouble(ns_per_span, 2)
              << " ns, " << FormatDouble(spans_per_query, 1)
              << " spans/query -> " << FormatDouble(overhead_pct, 4)
              << "% of p50 (budget 0.7%)\n";
    if (overhead_pct > 0.7) {
      std::cerr << "FAIL: disabled-tracing overhead "
                << FormatDouble(overhead_pct, 4) << "% exceeds 0.7%\n";
      return 1;
    }
  }

  // --- Phase 2: concurrent update stream with per-generation oracle.
  {
    Rng rng(7);
    std::vector<dynamic::UpdateBatch> stream =
        MakeStream(rng, d.graph, /*num_batches=*/10, /*updates_per_batch=*/20);

    dynamic::MaintainerOptions moptions;
    moptions.policy.kind = dynamic::RepartitionPolicy::Kind::kNever;
    moptions.mpc.base.k = bench::kSites;
    moptions.mpc.base.epsilon = bench::kEpsilon;
    dynamic::IncrementalMaintainer maintainer(d.graph.Clone(),
                                              seed_partitioning, moptions);

    // oracle[generation][query] = from-scratch answer on the snapshot
    // published at that generation. Written only by the update thread
    // (plus the seed entry below) and read only after it joins.
    std::map<uint64_t, std::vector<SortedRows>> oracle;
    auto record_oracle = [&](const serve::ServingState& state) {
      std::vector<SortedRows>& rows = oracle[state.generation()];
      for (const std::string& text : texts) {
        Result<exec::QueryResponse> direct =
            state.distributed().Execute(exec::QueryRequest::FromText(text));
        if (!direct.ok()) {
          std::cerr << "oracle execution failed: "
                    << direct.status().ToString() << "\n";
          std::exit(1);
        }
        rows.push_back(Sorted(direct->bindings));
      }
    };

    std::shared_ptr<const serve::ServingState> initial =
        serve::ServingState::Capture(maintainer, state_options);
    record_oracle(*initial);

    serve::QueryServiceOptions options;
    options.num_workers = kConcurrency;
    options.queue_capacity = 0;
    serve::QueryService service(std::move(initial), options);

    std::thread updater([&] {
      for (const dynamic::UpdateBatch& batch : stream) {
        maintainer.ApplyBatch(batch);
        std::shared_ptr<const serve::ServingState> next =
            serve::ServingState::Capture(maintainer, state_options);
        record_oracle(*next);
        service.Publish(std::move(next));
      }
    });

    // Paced replay overlapping the stream, then a short tail replay
    // after the last Publish so answers provably span generations and
    // the final generation's repeats must hit the result cache.
    ReplayResult r = Replay(service, texts, /*repeats=*/45, /*pace_ms=*/2.0);
    updater.join();
    ReplayResult tail = Replay(service, texts, /*repeats=*/5);
    service.Shutdown();
    r.submitted += tail.submitted;
    r.ok += tail.ok;
    r.failed += tail.failed;
    r.result_cache_hits += tail.result_cache_hits;
    r.plan_cache_hits += tail.plan_cache_hits;
    for (auto& answer : tail.answers) r.answers.push_back(std::move(answer));

    size_t mismatches = 0;
    uint64_t min_gen = UINT64_MAX;
    uint64_t max_gen = 0;
    for (const auto& [qi, response] : r.answers) {
      min_gen = std::min(min_gen, response.generation);
      max_gen = std::max(max_gen, response.generation);
      auto it = oracle.find(response.generation);
      if (it == oracle.end() ||
          Sorted(response.bindings) != it->second[qi]) {
        ++mismatches;
      }
    }
    std::cout << "dynamic: " << r.ok << "/" << r.submitted << " ok, "
              << FormatDouble(1000.0 * static_cast<double>(r.ok) / r.wall_ms,
                              0)
              << " qps, generations " << min_gen << ".." << max_gen << " ("
              << stream.size() << " batches), " << r.result_cache_hits
              << " result-cache hits, " << mismatches
              << " oracle mismatches\n";
    PrintLatency();
    if (r.failed != 0 || r.ok != r.submitted) {
      std::cerr << "FAIL: " << r.failed << " queries failed\n";
      return 1;
    }
    if (mismatches != 0) {
      std::cerr << "FAIL: " << mismatches
                << " answers disagreed with the from-scratch oracle for "
                   "their generation\n";
      return 1;
    }
    if (r.result_cache_hits == 0) {
      std::cerr << "FAIL: repeated-IEQ mix produced no result-cache "
                   "hits\n";
      return 1;
    }
  }

  std::cout << "serving checks passed (all answers generation-consistent)\n";
  return 0;
}

// Fault-tolerance experiment: best-effort answer completeness under
// crashed sites. Every strategy runs the same star (IEQ) workload — once
// healthy (the per-strategy ground truth), then with a window of f
// consecutive sites {s..s+f-1 mod k} failed under
// PartialResultPolicy::kBestEffort, averaged over all k rotations of the
// window so no strategy benefits from which site index happens to die.
// Reported: the fraction of ground-truth rows the degraded runs retain,
// next to the executor's own a-priori completeness_bound.
//
// Expected shape: the vertex-disjoint strategies (MPC, Subject_Hash,
// METIS) replicate crossing edges at both endpoints (Def 3.3-3.4), so
// live sites keep serving a down site's boundary data and retention
// degrades gracefully. VP keeps no replicas and concentrates each
// property on one site — when a query's property site dies the whole
// answer is gone — so MPC must retain strictly more than VP at every f.

#include "bench_util.h"

#include <set>

namespace {

using namespace mpc;

using RowSet = std::set<std::vector<uint32_t>>;

struct StrategyRun {
  std::string name;
  exec::Cluster cluster;
  std::vector<sparql::QueryGraph> queries;
  std::vector<RowSet> healthy;  // ground truth per query, faults off
};

/// Aggregated over every query and every rotation of the failure window.
struct Retention {
  size_t full_rows = 0;
  size_t kept_rows = 0;
  double bound = 1.0;  // min completeness_bound observed
  size_t failover_hits = 0;

  double percent() const {
    return full_rows == 0
               ? 100.0
               : 100.0 * static_cast<double>(kept_rows) /
                     static_cast<double>(full_rows);
  }
};

Retention RunRotations(StrategyRun& run, const rdf::RdfGraph& graph,
                       uint32_t failed_sites) {
  Retention r;
  for (uint32_t start = 0; start < bench::kSites; ++start) {
    exec::ExecutorOptions options;
    for (uint32_t i = 0; i < failed_sites; ++i) {
      options.faults.fail_sites.push_back((start + i) % bench::kSites);
    }
    options.partial_results = exec::PartialResultPolicy::kBestEffort;
    exec::DistributedExecutor executor(run.cluster, graph, options);
    for (size_t qi = 0; qi < run.queries.size(); ++qi) {
      auto degraded =
          executor.Execute(exec::QueryRequest::FromQuery(run.queries[qi]));
      if (!degraded.ok()) {
        std::cerr << run.name << " degraded run failed: "
                  << degraded.status().ToString() << "\n";
        std::exit(1);
      }
      const RowSet& full = run.healthy[qi];
      for (const auto& row : degraded->bindings.rows) {
        r.kept_rows += full.count(row);
      }
      r.full_rows += full.size();
      r.bound = std::min(r.bound, degraded->stats.completeness_bound);
      r.failover_hits += degraded->stats.failover_hits;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv);
  bench::ObsScope obs(argc, argv);
  std::cout << "=== Fault tolerance: best-effort completeness under "
               "crashed sites (k="
            << bench::kSites << ", scale " << scale
            << ", averaged over failure-window rotations) ===\n";

  workload::GeneratedDataset d =
      workload::MakeDataset(workload::DatasetId::kLubm, scale);

  std::vector<StrategyRun> runs;
  for (const std::string& s :
       {std::string("MPC"), std::string("Subject_Hash"),
        std::string("METIS"), std::string("VP")}) {
    StrategyRun run{s,
                    exec::Cluster::Build(bench::RunStrategy(s, d.graph)),
                    {},
                    {}};
    exec::DistributedExecutor reference(run.cluster, d.graph, {});
    for (const workload::NamedQuery& nq : d.benchmark_queries) {
      if (!nq.is_star) continue;  // IEQs: union-only, the paper's fast path
      sparql::QueryGraph q = bench::MustParse(nq.sparql);
      auto full = reference.Execute(exec::QueryRequest::FromQuery(q));
      if (!full.ok()) {
        std::cerr << nq.name << " failed healthy: "
                  << full.status().ToString() << "\n";
        std::exit(1);
      }
      run.queries.push_back(std::move(q));
      run.healthy.push_back(RowSet(full->bindings.rows.begin(),
                                   full->bindings.rows.end()));
    }
    runs.push_back(std::move(run));
  }

  std::cout << "--- " << d.name
            << " star workload (rows retained % | completeness bound % | "
               "failover hits) ---\n";
  bench::LeftCell("failed", 8);
  for (const StrategyRun& run : runs) bench::Cell(run.name, 24);
  std::cout << "\n";

  bool mpc_beats_vp = true;
  for (uint32_t f = 1; f <= bench::kSites / 2; ++f) {
    bench::LeftCell(std::to_string(f), 8);
    double mpc_pct = 0.0, vp_pct = 0.0;
    for (StrategyRun& run : runs) {
      Retention r = RunRotations(run, d.graph, f);
      if (run.name == "MPC") mpc_pct = r.percent();
      if (run.name == "VP") vp_pct = r.percent();
      bench::Cell(FormatDouble(r.percent(), 1) + " | " +
                      FormatDouble(100.0 * r.bound, 1) + " | " +
                      FormatWithCommas(r.failover_hits),
                  24);
    }
    std::cout << "\n";
    if (mpc_pct <= vp_pct) mpc_beats_vp = false;
  }

  std::cout << (mpc_beats_vp
                    ? "OK: MPC retains strictly more complete results "
                      "than VP at every failure count (1-hop replicas "
                      "serve the boundary of down sites; VP has none).\n"
                    : "VIOLATION: MPC did not retain strictly more than "
                      "VP — replica failover is not working.\n");
  return mpc_beats_vp ? 0 : 1;
}
